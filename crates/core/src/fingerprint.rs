//! Bucketized fingerprint hashing (Swiss-table / F14 lineage): the probing
//! scheme the paper's SIMD findings (§7) point at but stop short of.
//!
//! The paper vectorizes *per-slot* linear probing — four 8-byte keys per
//! AVX2 comparison — and finds the win limited by memory traffic: every
//! probe step still drags full key cache lines through the hierarchy.
//! Bucketized fingerprint probing inverts the layout: a contiguous array
//! of **1-byte tags** (a 7-bit fingerprint of each key's hash, with the
//! high bit reserved for the EMPTY/TOMBSTONE control values) is probed
//! **group-at-a-time** — one 16-byte SSE2 comparison classifies sixteen
//! slots (see [`crate::simd::scan_tags`]) — and the 8-byte keys, kept in a
//! struct-of-arrays payload next to their values, are touched only for
//! the (rare) tag matches. An unsuccessful lookup at 87% load reads ~one
//! tag line and usually zero key lines, versus a whole cluster of key
//! lines for LP; this is the bucket-of-candidates idea of multilevel hash
//! tables (multiple candidate slots resolved per probe step) fused with
//! open addressing.
//!
//! # Probe order and deletion
//!
//! Groups are probed linearly and circularly from the key's home group;
//! within a group all slots are candidates at once. A group containing an
//! EMPTY tag terminates the probe (the group-level analogue of LP's empty
//! slot), so deletion follows the paper's *optimized tombstone* rule
//! lifted to groups: clear the slot if its group still contains another
//! EMPTY tag (no probe ever continued past this group), otherwise write a
//! TOMBSTONE. Inserts recycle the first tombstone on their probe path
//! after the duplicate check, and a blocked insert reclaims tombstones by
//! rehashing in place before reporting [`TableError::TableFull`] — the
//! same remedies as LP/QP, so the scheme drops into the shared
//! differential suites unchanged.
//!
//! # Group size
//!
//! `GROUP` is a const parameter (default [`GROUP_SLOTS`] = 16, the size
//! one SSE2 register classifies per instruction). The `ablation_fp`
//! binary sweeps 4/8/16/32 to show why 16 is the sweet spot: smaller
//! groups probe more often, larger ones scan scalar (no single-register
//! compare) and evict more payload per miss.

use crate::linear_probing::{two_pass_batch, two_pass_insert_batch};
use crate::simd::{
    clamp_prefetch_batch, prefetch_read, scan_tags, ProbeKind, TagScan, EMPTY_TAG, PREFETCH_BATCH,
    TOMBSTONE_TAG,
};
use crate::{
    check_capacity_bits, is_reserved_key, HashTable, InsertOutcome, TableError, EMPTY_KEY,
};
use hashfn::{fold_to_bits, HashFamily, HashFn64};

/// Slots per probe group: what one SSE2 byte-compare classifies.
pub const GROUP_SLOTS: usize = 16;

/// Where a fingerprint probe stopped.
enum Probe {
    /// The key lives in `slot`; `group_empties` is the EMPTY-lane mask
    /// of that slot's group, so delete can apply the tombstone-vs-clear
    /// rule without rescanning the group it just probed.
    Found { slot: usize, group_empties: u32 },
    /// The key is absent; `free` is the slot an insert should take (first
    /// tombstone on the probe path, else the first empty slot of the
    /// terminating group).
    Absent { free: usize },
    /// Every group was scanned without an empty slot (table saturated
    /// with entries and tombstones, key absent).
    Exhausted { first_tombstone: Option<usize> },
}

/// Bucketized open addressing over a 1-byte tag array and an SoA
/// key/value payload. `FPMult` in the builder grid is
/// `FingerprintTable<MultShift>`.
#[derive(Clone)]
pub struct FingerprintTable<H: HashFn64, const GROUP: usize = GROUP_SLOTS> {
    /// One control byte per slot: 7-bit fingerprint, [`EMPTY_TAG`], or
    /// [`TOMBSTONE_TAG`]. Contiguous, so probing touches 1/16th the bytes
    /// of a key scan.
    tags: Box<[u8]>,
    keys: Box<[u64]>,
    values: Box<[u64]>,
    /// `log2` of the slot count.
    bits: u8,
    group_mask: usize,
    hash: H,
    len: usize,
    tombstones: usize,
    probe_kind: ProbeKind,
    pub(crate) prefetch_batch: usize,
}

impl<H: HashFamily, const GROUP: usize> FingerprintTable<H, GROUP> {
    /// Create a table with `2^bits` slots and a hash function drawn from
    /// seed `seed` (scalar tag scanning).
    pub fn with_seed(bits: u8, seed: u64) -> Self {
        Self::with_hash(bits, H::from_seed(seed))
    }

    /// Like [`FingerprintTable::with_seed`] with SIMD tag scanning (one
    /// SSE2 compare per 16-slot group on x86-64; scalar elsewhere).
    pub fn with_seed_simd(bits: u8, seed: u64) -> Self {
        let mut t = Self::with_hash(bits, H::from_seed(seed));
        t.probe_kind = ProbeKind::Simd;
        t
    }
}

impl<H: HashFn64, const GROUP: usize> FingerprintTable<H, GROUP> {
    /// Create a table with `2^bits` slots using an explicit hash
    /// function. `bits` must cover at least one group
    /// (`2^bits >= GROUP`), and `GROUP` must be a power of two in
    /// `4..=32`.
    pub fn with_hash(bits: u8, hash: H) -> Self {
        const { assert!(GROUP.is_power_of_two() && GROUP >= 4 && GROUP <= 32) };
        let cap = check_capacity_bits(bits);
        assert!(cap >= GROUP, "capacity 2^{bits} is smaller than one {GROUP}-slot group");
        Self {
            tags: vec![EMPTY_TAG; cap].into_boxed_slice(),
            keys: vec![EMPTY_KEY; cap].into_boxed_slice(),
            values: vec![0; cap].into_boxed_slice(),
            bits,
            group_mask: cap / GROUP - 1,
            hash,
            len: 0,
            tombstones: 0,
            probe_kind: ProbeKind::Scalar,
            prefetch_batch: PREFETCH_BATCH,
        }
    }

    /// Switch between scalar and SIMD tag scanning.
    pub fn set_probe_kind(&mut self, kind: ProbeKind) {
        self.probe_kind = kind;
    }

    /// The probe kind in use.
    pub fn probe_kind(&self) -> ProbeKind {
        self.probe_kind
    }

    /// Set the hash-and-prefetch window of the batch operations (clamped
    /// to `1..=`[`crate::simd::MAX_PREFETCH_BATCH`]; default
    /// [`PREFETCH_BATCH`]).
    pub fn set_prefetch_batch(&mut self, window: usize) {
        self.prefetch_batch = clamp_prefetch_batch(window);
    }

    /// The batch prefetch window in use.
    pub fn prefetch_batch(&self) -> usize {
        self.prefetch_batch
    }

    /// The hash function in use.
    pub fn hash_fn(&self) -> &H {
        &self.hash
    }

    /// Number of tombstone slots currently in the table.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Direct tag-array access for statistics and tests.
    pub fn raw_tags(&self) -> &[u8] {
        &self.tags
    }

    /// Home group and 7-bit fingerprint of `key`: the group comes from
    /// the top hash bits (the crate-wide convention), the fingerprint
    /// from the low 7 — disjoint bit ranges, so tags stay informative
    /// within a group.
    #[inline(always)]
    fn home(&self, key: u64) -> (usize, u8) {
        let h = self.hash.hash(key);
        let group_bits = self.bits - GROUP.trailing_zeros() as u8;
        (fold_to_bits(h, group_bits), (h & 0x7F) as u8)
    }

    /// Packed form of [`FingerprintTable::home`] for the batch macros:
    /// `group << 7 | fingerprint` (the tag is 7 bits), so one
    /// precomputed `usize` carries everything pass 2 needs. The group
    /// index needs `bits - log2(GROUP)` bits, so the packing fits any
    /// table constructible on the target — even 32-bit address spaces
    /// run out of memory for the payload long before `group << 7` can
    /// overflow `usize`.
    #[inline(always)]
    fn packed_home(&self, key: u64) -> usize {
        let (group, tag) = self.home(key);
        group << 7 | tag as usize
    }

    #[inline(always)]
    fn group_scan(&self, group: usize, tag: u8) -> TagScan {
        let base = group * GROUP;
        scan_tags(&self.tags[base..base + GROUP], tag, self.probe_kind)
    }

    /// Probe for `key` group by group from its home group.
    fn probe(&self, home_group: usize, tag: u8, key: u64) -> Probe {
        let mut group = home_group;
        let mut first_tombstone = None;
        for _ in 0..=self.group_mask {
            let base = group * GROUP;
            let scan = self.group_scan(group, tag);
            // Tag matches are candidates; the key array arbitrates (a
            // 7-bit fingerprint false-positives at rate ~2^-7 per
            // occupied slot).
            let mut m = scan.matches;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                if self.keys[base + lane] == key {
                    return Probe::Found { slot: base + lane, group_empties: scan.empties };
                }
                m &= m - 1;
            }
            if first_tombstone.is_none() && scan.tombstones != 0 {
                first_tombstone = Some(base + scan.tombstones.trailing_zeros() as usize);
            }
            if scan.empties != 0 {
                let empty = base + scan.empties.trailing_zeros() as usize;
                return Probe::Absent { free: first_tombstone.unwrap_or(empty) };
            }
            group = (group + 1) & self.group_mask;
        }
        Probe::Exhausted { first_tombstone }
    }

    /// Rebuild the table in place (same capacity, same hash function),
    /// dropping all tombstones — the LP remedy, shared verbatim.
    ///
    /// Literally in place: live entries are snapshotted, the *existing*
    /// tag array is cleared and all three arrays are refilled, so no
    /// allocation ever moves — the in-bounds guarantee optimistic readers
    /// need (see [`crate::optimistic`]).
    pub fn rehash_in_place(&mut self) {
        let live: Vec<(u64, u64)> = self
            .tags
            .iter()
            .enumerate()
            .filter(|(_, &t)| t < EMPTY_TAG)
            .map(|(i, _)| (self.keys[i], self.values[i]))
            .collect();
        self.tags.fill(EMPTY_TAG);
        self.keys.fill(EMPTY_KEY);
        self.len = 0;
        self.tombstones = 0;
        for (k, v) in live {
            // Distinct keys into an equally-sized empty table: cannot
            // fail or replace.
            let _ = self.insert(k, v);
        }
    }

    /// Blocked-insert remedy: tombstones are reclaimable capacity —
    /// rehash them away and retry (at most once) before reporting a full
    /// table.
    fn reclaim_or_full(&mut self, key: u64, value: u64) -> Result<InsertOutcome, TableError> {
        if self.tombstones == 0 {
            return Err(TableError::TableFull);
        }
        self.rehash_in_place();
        self.insert(key, value)
    }

    fn place(&mut self, slot: usize, tag: u8, key: u64, value: u64) {
        self.tags[slot] = tag;
        self.keys[slot] = key;
        self.values[slot] = value;
        self.len += 1;
    }

    /// [`HashTable::insert`] body with a precomputed home group and
    /// fingerprint; `key` must not be reserved.
    fn insert_from(
        &mut self,
        home_group: usize,
        tag: u8,
        key: u64,
        value: u64,
    ) -> Result<InsertOutcome, TableError> {
        match self.probe(home_group, tag, key) {
            Probe::Found { slot, .. } => {
                let old = std::mem::replace(&mut self.values[slot], value);
                Ok(InsertOutcome::Replaced(old))
            }
            Probe::Absent { free } => {
                if self.tags[free] == TOMBSTONE_TAG {
                    self.tombstones -= 1;
                } else if self.len + self.tombstones >= self.tags.len() - 1 {
                    // Keep one empty slot table-wide as the probe
                    // terminator, exactly like the per-slot schemes.
                    return self.reclaim_or_full(key, value);
                }
                self.place(free, tag, key, value);
                Ok(InsertOutcome::Inserted)
            }
            Probe::Exhausted { first_tombstone } => match first_tombstone {
                Some(slot) => {
                    self.tombstones -= 1;
                    self.place(slot, tag, key, value);
                    Ok(InsertOutcome::Inserted)
                }
                None => self.reclaim_or_full(key, value),
            },
        }
    }

    /// [`HashTable::lookup`] body with a precomputed home group and
    /// fingerprint.
    #[inline]
    fn lookup_from(&self, home_group: usize, tag: u8, key: u64) -> Option<u64> {
        match self.probe(home_group, tag, key) {
            Probe::Found { slot, .. } => Some(self.values[slot]),
            _ => None,
        }
    }

    /// [`HashTable::delete`] body with a precomputed home group and
    /// fingerprint.
    fn delete_from(&mut self, home_group: usize, tag: u8, key: u64) -> Option<u64> {
        let Probe::Found { slot, group_empties } = self.probe(home_group, tag, key) else {
            return None;
        };
        let value = self.values[slot];
        // Optimized tombstones at group granularity: a group that still
        // has an EMPTY tag never let any probe continue past it (empties
        // only ever appear in groups that already had one), so clearing
        // the slot cannot disconnect later groups. An empty-free group
        // must tombstone. The probe already scanned this group — its
        // EMPTY mask rides along in `Probe::Found`.
        if group_empties != 0 {
            self.tags[slot] = EMPTY_TAG;
        } else {
            self.tags[slot] = TOMBSTONE_TAG;
            self.tombstones += 1;
        }
        self.keys[slot] = EMPTY_KEY;
        self.len -= 1;
        Some(value)
    }
}

impl<H: HashFn64, const GROUP: usize> HashTable for FingerprintTable<H, GROUP> {
    fn insert(&mut self, key: u64, value: u64) -> Result<InsertOutcome, TableError> {
        if is_reserved_key(key) {
            return Err(TableError::ReservedKey);
        }
        let (group, tag) = self.home(key);
        self.insert_from(group, tag, key, value)
    }

    #[inline]
    fn lookup(&self, key: u64) -> Option<u64> {
        if is_reserved_key(key) {
            return None;
        }
        let (group, tag) = self.home(key);
        self.lookup_from(group, tag, key)
    }

    fn lookup_probed(&self, key: u64) -> (Option<u64>, usize) {
        if is_reserved_key(key) {
            return (None, 1);
        }
        // Probe unit here is 16-slot *groups*, not slots — one tag scan
        // is one step, matching what a miss actually costs.
        let (home_group, tag) = self.home(key);
        let mut group = home_group;
        for i in 0..=self.group_mask {
            let base = group * GROUP;
            let scan = self.group_scan(group, tag);
            let mut m = scan.matches;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                if self.keys[base + lane] == key {
                    return (Some(self.values[base + lane]), i + 1);
                }
                m &= m - 1;
            }
            if scan.empties != 0 {
                return (None, i + 1);
            }
            group = (group + 1) & self.group_mask;
        }
        (None, self.group_mask + 1)
    }

    fn delete(&mut self, key: u64) -> Option<u64> {
        if is_reserved_key(key) {
            return None;
        }
        let (group, tag) = self.home(key);
        self.delete_from(group, tag, key)
    }

    fn lookup_batch(&self, keys: &[u64], out: &mut [Option<u64>]) {
        two_pass_batch!(
            self,
            keys,
            out,
            |t: &Self, k| t.packed_home(k),
            |t: &Self, h: usize| &t.tags[(h >> 7) * GROUP] as *const u8,
            |t: &Self, h: usize, k| if is_reserved_key(k) {
                None
            } else {
                t.lookup_from(h >> 7, (h & 0x7F) as u8, k)
            }
        );
    }

    fn insert_batch(
        &mut self,
        items: &[(u64, u64)],
        out: &mut [Result<InsertOutcome, TableError>],
    ) {
        two_pass_insert_batch!(
            self,
            items,
            out,
            |t: &Self, k| t.packed_home(k),
            |t: &Self, h: usize| &t.tags[(h >> 7) * GROUP] as *const u8,
            |t: &mut Self, h: usize, k, v| t.insert_from(h >> 7, (h & 0x7F) as u8, k, v)
        );
    }

    fn delete_batch(&mut self, keys: &[u64], out: &mut [Option<u64>]) {
        two_pass_batch!(
            self,
            keys,
            out,
            |t: &Self, k| t.packed_home(k),
            |t: &Self, h: usize| &t.tags[(h >> 7) * GROUP] as *const u8,
            |t: &mut Self, h: usize, k| if is_reserved_key(k) {
                None
            } else {
                t.delete_from(h >> 7, (h & 0x7F) as u8, k)
            }
        );
    }

    fn len(&self) -> usize {
        self.len
    }

    fn capacity(&self) -> usize {
        self.tags.len()
    }

    fn memory_bytes(&self) -> usize {
        // 17 B per slot: 1 tag + 8 key + 8 value (vs 16 B/slot for the
        // LP layouts — the tag array is the 6.25% premium that buys
        // group-at-a-time probing).
        self.tags.len() + (self.keys.len() + self.values.len()) * std::mem::size_of::<u64>()
    }

    fn for_each(&self, f: &mut dyn FnMut(u64, u64)) {
        for (i, &t) in self.tags.iter().enumerate() {
            if t < EMPTY_TAG {
                f(self.keys[i], self.values[i]);
            }
        }
    }

    fn display_name(&self) -> String {
        let group = if GROUP == GROUP_SLOTS { String::new() } else { format!("G{GROUP}") };
        match self.probe_kind {
            ProbeKind::Scalar => format!("FP{group}{}", H::name()),
            ProbeKind::Simd => format!("FP{group}{}SIMD", H::name()),
        }
    }
}

/// None of the three arrays moves after construction (`rehash_in_place`
/// rebuilds inside the existing allocations). The optimistic probe
/// volatile-copies each group's tags to a stack buffer, classifies the
/// copy with the configured [`scan_tags`] kernel (SSE2 or scalar), then
/// arbitrates candidate lanes with volatile key reads — tag, key and
/// value are read at different instants, so any torn combination implies
/// a racing writer, which the caller's seqlock validation detects. The
/// loop is bounded by the group count, never by the "some group has an
/// empty" invariant.
impl<H: HashFn64, const GROUP: usize> crate::optimistic::ReadView for FingerprintTable<H, GROUP> {
    fn supports_optimistic(&self) -> bool {
        true
    }

    unsafe fn lookup_optimistic(&self, key: u64) -> Option<Option<u64>> {
        if is_reserved_key(key) {
            return Some(None);
        }
        let (home_group, tag) = self.home(key);
        let tags_base = self.tags.as_ptr();
        let keys_base = self.keys.as_ptr();
        let values_base = self.values.as_ptr();
        let mut buf = [EMPTY_TAG; 32]; // GROUP is const-asserted ≤ 32
        let mut group = home_group;
        for _ in 0..=self.group_mask {
            let base = group * GROUP;
            for (i, b) in buf[..GROUP].iter_mut().enumerate() {
                *b = std::ptr::read_volatile(tags_base.add(base + i));
            }
            let scan = scan_tags(&buf[..GROUP], tag, self.probe_kind);
            let mut m = scan.matches;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                if std::ptr::read_volatile(keys_base.add(base + lane)) == key {
                    return Some(Some(std::ptr::read_volatile(values_base.add(base + lane))));
                }
                m &= m - 1;
            }
            if scan.empties != 0 {
                return Some(None);
            }
            group = (group + 1) & self.group_mask;
        }
        Some(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_common::*;
    use crate::TOMBSTONE_KEY;
    use hashfn::{MultShift, Murmur};

    fn scalar(bits: u8) -> FingerprintTable<Murmur> {
        FingerprintTable::with_seed(bits, 42)
    }

    fn simd(bits: u8) -> FingerprintTable<Murmur> {
        FingerprintTable::with_seed_simd(bits, 42)
    }

    #[test]
    fn roundtrip_both_kinds() {
        check_roundtrip(&mut scalar(8));
        check_roundtrip(&mut simd(8));
    }

    #[test]
    fn replace_semantics_both_kinds() {
        check_replace_semantics(&mut scalar(8));
        check_replace_semantics(&mut simd(8));
    }

    #[test]
    fn reserved_keys_both_kinds() {
        check_reserved_keys(&mut scalar(4));
        check_reserved_keys(&mut simd(4));
    }

    #[test]
    fn for_each_visits_live_entries() {
        check_for_each(&mut scalar(8));
    }

    #[test]
    fn model_test_scalar() {
        check_against_model(&mut scalar(10), 5000, 0xF1A);
    }

    #[test]
    fn model_test_simd() {
        check_against_model(&mut simd(10), 5000, 0xF1B);
    }

    #[test]
    fn model_test_single_group_table() {
        // 2^4 slots = exactly one 16-slot group: the probe loop's
        // degenerate circular case.
        check_against_model(&mut scalar(4), 3000, 0xF1C);
    }

    #[test]
    fn model_test_non_default_group_sizes() {
        let mut g4: FingerprintTable<Murmur, 4> = FingerprintTable::with_seed(9, 1);
        check_against_model(&mut g4, 4000, 0xF1D);
        let mut g32: FingerprintTable<Murmur, 32> = FingerprintTable::with_seed(9, 2);
        check_against_model(&mut g32, 4000, 0xF1E);
    }

    #[test]
    fn batch_ops_match_single_key_path() {
        check_batch_matches_single(&mut scalar(9), &mut scalar(9), 0xF1AD);
        check_batch_matches_single(&mut simd(9), &mut simd(9), 0xF1AE);
    }

    #[test]
    fn simd_and_scalar_tables_agree_step_by_step() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xF00);
        let mut a = scalar(9);
        let mut b = simd(9);
        for step in 0..6000 {
            let k = rng.gen_range(1..300u64);
            match rng.gen_range(0..3u8) {
                0 => assert_eq!(a.insert(k, k), b.insert(k, k), "step {step}"),
                1 => assert_eq!(a.delete(k), b.delete(k), "step {step}"),
                _ => assert_eq!(a.lookup(k), b.lookup(k), "step {step}"),
            }
            assert_eq!(a.len(), b.len(), "step {step}");
        }
        assert_eq!(a.raw_tags(), b.raw_tags(), "kinds must place identically");
    }

    #[test]
    fn tags_are_fingerprints_of_live_keys() {
        let mut t = scalar(8);
        for k in 1..=150u64 {
            t.insert(k, k).unwrap();
        }
        let mut live = 0;
        for (i, &tag) in t.raw_tags().iter().enumerate() {
            if tag < EMPTY_TAG {
                live += 1;
                let (_, expect) = t.home(t.keys[i]);
                assert_eq!(tag, expect, "slot {i} tag is not its key's fingerprint");
            }
        }
        assert_eq!(live, t.len());
    }

    #[test]
    fn delete_clears_in_groups_with_empties_and_tombstones_otherwise() {
        // Multiplier 1 ⇒ home group = top bits ⇒ small keys all hit group
        // 0; fill it completely so deletes must tombstone.
        let mut t: FingerprintTable<MultShift> = FingerprintTable::with_hash(5, MultShift::new(1));
        for k in 1..=16u64 {
            t.insert(k, k).unwrap();
        }
        // Group 0 full: deleting from it must tombstone.
        assert_eq!(t.delete(3), Some(3));
        assert_eq!(t.tombstone_count(), 1);
        assert_eq!(t.raw_tags().iter().filter(|&&x| x == TOMBSTONE_TAG).count(), 1);
        // A half-empty group clears instead.
        let mut t: FingerprintTable<MultShift> = FingerprintTable::with_hash(5, MultShift::new(1));
        t.insert(1, 1).unwrap();
        t.insert(2, 2).unwrap();
        assert_eq!(t.delete(1), Some(1));
        assert_eq!(t.tombstone_count(), 0);
    }

    #[test]
    fn overflow_spills_to_the_next_group_and_stays_reachable() {
        let mut t: FingerprintTable<MultShift> = FingerprintTable::with_hash(6, MultShift::new(1));
        // 20 colliding keys: 16 fill group 0, 4 spill into group 1.
        for k in 1..=20u64 {
            t.insert(k, k * 10).unwrap();
        }
        for k in 1..=20u64 {
            assert_eq!(t.lookup(k), Some(k * 10), "key {k}");
        }
        // Deleting a home-group key tombstones (group 0 is full) and the
        // spilled keys stay reachable across the tombstone.
        assert_eq!(t.delete(5), Some(50));
        for k in (1..=20u64).filter(|&k| k != 5) {
            assert_eq!(t.lookup(k), Some(k * 10), "key {k} after delete");
        }
        // The tombstone is recycled by the next colliding insert.
        assert_eq!(t.insert(21, 210), Ok(InsertOutcome::Inserted));
        assert_eq!(t.tombstone_count(), 0);
    }

    #[test]
    fn rehash_in_place_drops_tombstones() {
        let mut t = scalar(8);
        for k in 1..=200u64 {
            t.insert(k, k).unwrap();
        }
        for k in 1..=100u64 {
            t.delete(k);
        }
        assert!(t.tombstone_count() > 0, "a 78%-full table must tombstone some deletes");
        t.rehash_in_place();
        assert_eq!(t.tombstone_count(), 0);
        assert_eq!(t.len(), 100);
        for k in 101..=200u64 {
            assert_eq!(t.lookup(k), Some(k));
        }
    }

    #[test]
    fn memory_is_17_bytes_per_slot() {
        assert_eq!(scalar(10).memory_bytes(), 1024 * 17);
        assert_eq!(scalar(10).capacity(), 1024);
    }

    #[test]
    fn display_names() {
        assert_eq!(scalar(4).display_name(), "FPMurmur");
        assert_eq!(simd(4).display_name(), "FPMurmurSIMD");
        let t: FingerprintTable<MultShift> = FingerprintTable::with_seed(4, 1);
        assert_eq!(t.display_name(), "FPMult");
        let t: FingerprintTable<MultShift, 8> = FingerprintTable::with_seed(4, 1);
        assert_eq!(t.display_name(), "FPG8Mult");
    }

    #[test]
    #[should_panic(expected = "smaller than one")]
    fn rejects_capacity_below_one_group() {
        let _: FingerprintTable<Murmur> = FingerprintTable::with_seed(2, 1);
    }

    #[test]
    fn fills_to_capacity_minus_one() {
        let mut t = scalar(4); // one 16-slot group
        let mut inserted = 0u64;
        for k in 1..=16u64 {
            match t.insert(k, k) {
                Ok(InsertOutcome::Inserted) => inserted += 1,
                Err(TableError::TableFull) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(inserted, 15, "one slot must stay empty as probe terminator");
        for k in 1..=inserted {
            assert_eq!(t.lookup(k), Some(k));
        }
        assert_eq!(t.lookup(100), None);
        // Delete-then-reinsert at max load reclaims via rehash.
        assert_eq!(t.delete(2), Some(2));
        assert_eq!(t.insert(99, 99), Ok(InsertOutcome::Inserted));
        assert_eq!(t.lookup(99), Some(99));
    }

    #[test]
    fn reserved_keys_flow_through_batches_inert() {
        let mut t = simd(8);
        let items = [(7u64, 70u64), (EMPTY_KEY, 1), (TOMBSTONE_KEY, 2), (8, 80)];
        let mut out = vec![Ok(InsertOutcome::Inserted); items.len()];
        t.insert_batch(&items, &mut out);
        assert_eq!(
            out,
            vec![
                Ok(InsertOutcome::Inserted),
                Err(TableError::ReservedKey),
                Err(TableError::ReservedKey),
                Ok(InsertOutcome::Inserted),
            ]
        );
        let keys = [EMPTY_KEY, 7, TOMBSTONE_KEY, 8];
        let mut vals = vec![None; keys.len()];
        t.lookup_batch(&keys, &mut vals);
        assert_eq!(vals, vec![None, Some(70), None, Some(80)]);
    }
}
