//! Hashing schemes for 64-bit integer keys and values, as studied in
//! *"A Seven-Dimensional Analysis of Hashing Methods and its Implications on
//! Query Processing"* (Richter, Alvarez, Dittrich; PVLDB 9(3), 2015).
//!
//! # Schemes (paper §2)
//!
//! | Type | Paper name | Collision handling |
//! |---|---|---|
//! | [`ChainedTable8`]  | ChainedH8  | directory of 8-byte links; all entries in a slab |
//! | [`ChainedTable24`] | ChainedH24 | 24-byte directory entries with inline first element |
//! | [`LinearProbing`]  | LP | open addressing, step 1, optimized tombstones |
//! | [`LinearProbingSoA`] | LP (SoA layout) | as LP, keys/values in split arrays |
//! | [`QuadraticProbing`] | QP | triangular probing `h + i(i+1)/2`, full slot coverage |
//! | [`RobinHood`] | RH | LP + displacement-ordered clusters, cache-line early abort, backward-shift deletes |
//! | [`Cuckoo`] | CuckooH2/3/4 | k independently hashed sub-tables, kick-out chains, rehash on failure |
//! | [`FingerprintTable`] | FP (beyond the paper) | bucketized 16-slot groups over a 1-byte tag array, SSE2 group probing |
//!
//! Every scheme is generic over the hash function (see the [`hashfn`]
//! crate), giving the paper's scheme × function grid (e.g. `LPMult` is
//! `LinearProbing<MultShift>`).
//!
//! # Map semantics and reserved keys
//!
//! All tables are maps from `u64` keys to `u64` values: inserting an
//! existing key replaces its value. Open-addressing slots store control
//! values in-band, exactly like the paper's C++ tables, so two keys are
//! reserved: [`EMPTY_KEY`] and [`TOMBSTONE_KEY`]. Inserting them yields
//! [`TableError::ReservedKey`].
//!
//! # Layout
//!
//! Open-addressing tables default to array-of-structs (AoS) — interleaved
//! 16-byte key/value pairs — which the paper found superior in most cases
//! (§7). [`LinearProbingSoA`] provides the struct-of-arrays alternative,
//! and both layouts have AVX2-accelerated probing variants (see [`simd`])
//! used by the Figure 7 reproduction.

pub mod budget;
pub mod builder;
pub mod chained;
pub mod cuckoo;
pub mod decision;
pub mod dynamic;
pub mod entries;
pub mod fingerprint;
pub mod linear_probing;
pub mod lp_soa;
pub mod optimistic;
pub mod quadratic;
pub mod robin_hood;
pub mod sharded;
pub mod simd;
pub mod stats;

#[cfg(test)]
pub(crate) mod tests_common;

pub use budget::MemoryBudget;
pub use builder::{profile_choice, BoxedTable, FsyncPolicy, HashKind, TableBuilder, TableScheme};
pub use chained::{ChainedTable24, ChainedTable8};
pub use cuckoo::Cuckoo;
pub use decision::{recommend, TableChoice, WorkloadProfile};
pub use dynamic::{
    AdaptiveConfig, Chained24Factory, Chained8Factory, CuckooFactory, DynamicTable, GrowthPolicy,
    LpFactory, LpSoAFactory, MigrationPolicy, QpFactory, RhFactory, TableFactory,
};
pub use entries::EntrySnapshot;
pub use fingerprint::{FingerprintTable, GROUP_SLOTS};
pub use linear_probing::{DeleteStrategy, LinearProbing};
pub use lp_soa::LinearProbingSoA;
pub use optimistic::{ReadView, OPTIMISTIC_RETRIES};
pub use quadratic::QuadraticProbing;
pub use robin_hood::{RhLookupMode, RobinHood};
pub use sharded::{ConcurrentTable, ShardedTable};
pub use stats::{RuntimeStats, TableStats};

use hashfn::HashFn64;

/// In-band marker for a free open-addressing slot.
///
/// The paper stores "special values denoting whether the corresponding slot
/// is free" directly in the table (§2); we reserve the top two key values
/// for that purpose.
pub const EMPTY_KEY: u64 = u64::MAX;

/// In-band marker for a deleted open-addressing slot (LP/QP tombstones).
pub const TOMBSTONE_KEY: u64 = u64::MAX - 1;

/// Largest key a table accepts (`u64::MAX - 2`).
pub const MAX_KEY: u64 = u64::MAX - 2;

/// Returns `true` for keys that collide with the in-band slot markers.
#[inline(always)]
pub fn is_reserved_key(key: u64) -> bool {
    key >= TOMBSTONE_KEY
}

/// A 16-byte key/value pair — one AoS slot ("similar to a row layout").
#[repr(C)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pair {
    /// The key, or [`EMPTY_KEY`] / [`TOMBSTONE_KEY`] for control slots.
    pub key: u64,
    /// The value (meaningless in control slots).
    pub value: u64,
}

const _: () = assert!(std::mem::size_of::<Pair>() == 16);

impl Pair {
    /// A free slot.
    #[inline(always)]
    pub const fn empty() -> Self {
        Pair { key: EMPTY_KEY, value: 0 }
    }

    /// A tombstone slot.
    #[inline(always)]
    pub const fn tombstone() -> Self {
        Pair { key: TOMBSTONE_KEY, value: 0 }
    }

    /// Whether this slot is free.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.key == EMPTY_KEY
    }

    /// Whether this slot is a tombstone.
    #[inline(always)]
    pub fn is_tombstone(&self) -> bool {
        self.key == TOMBSTONE_KEY
    }

    /// Whether this slot holds a live entry.
    #[inline(always)]
    pub fn is_occupied(&self) -> bool {
        self.key < TOMBSTONE_KEY
    }
}

/// What an insert did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was new; the table grew by one entry.
    Inserted,
    /// The key existed; its previous value is returned.
    Replaced(u64),
}

/// Why an insert was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableError {
    /// Every slot is occupied (open addressing) — the fixed-capacity table
    /// cannot take another distinct key.
    TableFull,
    /// The key collides with an in-band control value
    /// ([`EMPTY_KEY`] / [`TOMBSTONE_KEY`]).
    ReservedKey,
    /// A chained table would exceed its memory budget (paper §4.5) by
    /// allocating another entry.
    MemoryBudgetExceeded,
    /// Cuckoo insertion failed even after the configured number of full
    /// rehash attempts with fresh hash functions.
    CuckooFailure,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::TableFull => write!(f, "hash table is full"),
            TableError::ReservedKey => {
                write!(f, "key collides with reserved control value (u64::MAX or u64::MAX-1)")
            }
            TableError::MemoryBudgetExceeded => {
                write!(f, "chained table memory budget exceeded")
            }
            TableError::CuckooFailure => {
                write!(f, "cuckoo insertion failed after maximum rehash attempts")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// Common interface of all hash tables in the study.
///
/// The trait is deliberately narrow — exactly the operations the paper's
/// workloads exercise — so the workload drivers and the query-processing
/// layer stay generic over scheme × hash function.
///
/// # Batch operations
///
/// Query processing feeds tables keys in bulk (join probes, group-by
/// updates), so every operation also exists in a `*_batch` form that is
/// **semantically identical** to calling the single-key form element by
/// element, in order. The defaults are exactly that loop; the
/// open-addressing tables override them with a two-pass hash-then-probe
/// implementation that precomputes home slots and issues software
/// prefetches so independent cache misses overlap (see
/// [`simd::prefetch_read`]).
///
/// # Optimistic reads
///
/// [`ReadView`] is a supertrait: every table also
/// describes its lock-free read capability. The defaults are
/// conservative (no optimistic support — all reads go through locks), so
/// a scheme opts in by overriding the `ReadView` methods; see the
/// [`optimistic`] module for the protocol and soundness rules.
pub trait HashTable: optimistic::ReadView {
    /// Insert or update `key → value`.
    fn insert(&mut self, key: u64, value: u64) -> Result<InsertOutcome, TableError>;

    /// Look up `key`, returning its value if present.
    fn lookup(&self, key: u64) -> Option<u64>;

    /// Look up `key` and also report how many probe steps the scheme
    /// examined — slots for the linearly addressed schemes, 16-slot groups
    /// for the fingerprint table, so the unit is scheme-relative (compare
    /// against the *same* scheme's steady state, not across schemes).
    ///
    /// This is the sampled instrumentation hook behind
    /// [`stats::TableStats::mean_probe_len`]; the default reports one step
    /// for schemes without an instrumented probe path.
    fn lookup_probed(&self, key: u64) -> (Option<u64>, usize) {
        (self.lookup(key), 1)
    }

    /// Remove `key`, returning its value if it was present.
    fn delete(&mut self, key: u64) -> Option<u64>;

    /// Look up `keys[i]` into `out[i]` for every `i`, exactly as if
    /// [`HashTable::lookup`] had been called element by element.
    ///
    /// # Panics
    /// Panics if `keys.len() != out.len()`.
    fn lookup_batch(&self, keys: &[u64], out: &mut [Option<u64>]) {
        assert_eq!(keys.len(), out.len(), "lookup_batch: keys and out lengths differ");
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = self.lookup(k);
        }
    }

    /// Insert every `(key, value)` of `items` in order, recording each
    /// outcome in `out[i]`, exactly as if [`HashTable::insert`] had been
    /// called element by element (later elements still run after an
    /// earlier element fails).
    ///
    /// # Panics
    /// Panics if `items.len() != out.len()`.
    fn insert_batch(
        &mut self,
        items: &[(u64, u64)],
        out: &mut [Result<InsertOutcome, TableError>],
    ) {
        assert_eq!(items.len(), out.len(), "insert_batch: items and out lengths differ");
        for (o, &(k, v)) in out.iter_mut().zip(items) {
            *o = self.insert(k, v);
        }
    }

    /// Delete `keys[i]` into `out[i]` for every `i`, exactly as if
    /// [`HashTable::delete`] had been called element by element.
    ///
    /// # Panics
    /// Panics if `keys.len() != out.len()`.
    fn delete_batch(&mut self, keys: &[u64], out: &mut [Option<u64>]) {
        assert_eq!(keys.len(), out.len(), "delete_batch: keys and out lengths differ");
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = self.delete(k);
        }
    }

    /// Number of live entries.
    fn len(&self) -> usize;

    /// `len() == 0`.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nominal slot capacity: `l` for open addressing; for chained tables,
    /// the open-addressing-equivalent capacity they are budgeted against
    /// (falling back to the directory size for unbudgeted tables).
    fn capacity(&self) -> usize;

    /// `len() / capacity()` — the paper's α (only meaningful for chained
    /// tables in the budgeted sense, see §4.5).
    fn load_factor(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Bytes owned by the table (directory + slabs + auxiliary arrays),
    /// the quantity plotted in the paper's Figure 3 / Figure 5(d–f).
    fn memory_bytes(&self) -> usize;

    /// Visit every live entry. Iteration order is unspecified.
    fn for_each(&self, f: &mut dyn FnMut(u64, u64));

    /// Display name in the paper's naming style, e.g. `"LPMult"`.
    fn display_name(&self) -> String;

    /// Live runtime signals ([`stats::TableStats`]), if this table collects
    /// them. Plain schemes return `None` — only the wrappers that own a
    /// [`stats::RuntimeStats`] (the dynamic/migrating table, and sharded
    /// aggregation on top) report here, so the raw probe kernels stay
    /// counter-free.
    fn table_stats(&self) -> Option<stats::TableStats> {
        None
    }
}

/// Boxed tables are tables: every call — including the batch forms, so a
/// `Box<dyn HashTable>` still reaches the prefetching overrides through
/// the vtable — delegates to the boxed value. This is what lets
/// [`TableBuilder`]-built trait objects flow through every generic
/// workload driver unchanged.
impl<T: HashTable + ?Sized> HashTable for Box<T> {
    fn insert(&mut self, key: u64, value: u64) -> Result<InsertOutcome, TableError> {
        (**self).insert(key, value)
    }

    fn lookup(&self, key: u64) -> Option<u64> {
        (**self).lookup(key)
    }

    fn lookup_probed(&self, key: u64) -> (Option<u64>, usize) {
        (**self).lookup_probed(key)
    }

    fn delete(&mut self, key: u64) -> Option<u64> {
        (**self).delete(key)
    }

    fn lookup_batch(&self, keys: &[u64], out: &mut [Option<u64>]) {
        (**self).lookup_batch(keys, out)
    }

    fn insert_batch(
        &mut self,
        items: &[(u64, u64)],
        out: &mut [Result<InsertOutcome, TableError>],
    ) {
        (**self).insert_batch(items, out)
    }

    fn delete_batch(&mut self, keys: &[u64], out: &mut [Option<u64>]) {
        (**self).delete_batch(keys, out)
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn capacity(&self) -> usize {
        (**self).capacity()
    }

    fn load_factor(&self) -> f64 {
        (**self).load_factor()
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    fn for_each(&self, f: &mut dyn FnMut(u64, u64)) {
        (**self).for_each(f)
    }

    fn display_name(&self) -> String {
        (**self).display_name()
    }

    fn table_stats(&self) -> Option<stats::TableStats> {
        (**self).table_stats()
    }
}

/// Derive the home slot of `key` in a `2^bits`-slot table using hash
/// function `h` (top-bits convention, see [`hashfn::fold_to_bits`]).
#[inline(always)]
pub fn home_slot<H: HashFn64>(h: &H, key: u64, bits: u8) -> usize {
    hashfn::fold_to_bits(h.hash(key), bits)
}

/// Validate a capacity expressed as a power-of-two exponent.
///
/// Exponents up to 32 (4 Gi slots) are accepted; the paper's largest table
/// is 2^30.
#[inline]
pub(crate) fn check_capacity_bits(bits: u8) -> usize {
    assert!((1..=32).contains(&bits), "capacity bits must be in 1..=32, got {bits}");
    1usize << bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_key_predicate() {
        assert!(is_reserved_key(EMPTY_KEY));
        assert!(is_reserved_key(TOMBSTONE_KEY));
        assert!(!is_reserved_key(MAX_KEY));
        assert!(!is_reserved_key(0));
    }

    #[test]
    fn pair_slot_states_are_disjoint() {
        let e = Pair::empty();
        let t = Pair::tombstone();
        let o = Pair { key: 42, value: 7 };
        assert!(e.is_empty() && !e.is_tombstone() && !e.is_occupied());
        assert!(!t.is_empty() && t.is_tombstone() && !t.is_occupied());
        assert!(!o.is_empty() && !o.is_tombstone() && o.is_occupied());
    }

    #[test]
    #[should_panic(expected = "capacity bits")]
    fn zero_capacity_bits_rejected() {
        check_capacity_bits(0);
    }

    #[test]
    fn error_display_strings() {
        assert!(TableError::TableFull.to_string().contains("full"));
        assert!(TableError::ReservedKey.to_string().contains("reserved"));
        assert!(TableError::MemoryBudgetExceeded.to_string().contains("budget"));
        assert!(TableError::CuckooFailure.to_string().contains("cuckoo"));
    }
}
