//! The read side of the seqlock protocol: optimistic, lock-free probing.
//!
//! [`ShardedTable`](crate::ShardedTable) guards each shard with a mutex
//! *and* a generation counter (a seqlock: even = stable, odd = writer
//! active). Readers may probe a shard **without** taking the mutex — they
//! read the counter, probe, and accept the answer only if the counter is
//! unchanged and still even. A probe that raced a writer is simply
//! discarded and retried (bounded), then falls back to the locked path.
//!
//! [`ReadView`] is what a table must provide for that to be sound:
//! a probe that can run concurrently with a writer mutating the same
//! table, reading slot contents through [`std::ptr::read_volatile`] so a
//! torn slot is only ever *data the validation step throws away*, never a
//! pointer that gets dereferenced. The trait is a supertrait of
//! [`HashTable`](crate::HashTable), with conservative defaults — a scheme
//! that doesn't opt in simply reports `supports_optimistic() == false`
//! and every read of it goes through the lock, exactly as before.
//!
//! # What makes an implementation sound
//!
//! The probe runs while a writer may be mid-mutation, so the usual
//! invariants ("an empty slot exists", "displacements are monotone") can
//! be *transiently false*. An implementation must therefore guarantee,
//! for any byte garbage in the slot arrays:
//!
//! 1. **In-bounds**: every address read is inside an allocation that
//!    stays alive and fixed for the table's lifetime. The open-addressing
//!    schemes guarantee this by never reallocating their slot arrays
//!    after construction (same-capacity rehashes rebuild in place);
//!    [`DynamicTable`](crate::DynamicTable) guarantees it by publishing
//!    generations through atomic pointers and retiring — not freeing —
//!    replaced generations while optimistic reads are enabled.
//! 2. **Termination**: every probe loop is bounded by the capacity (not
//!    by an invariant like "probing stops at an empty slot").
//! 3. **No trusted derefs**: raced data may be *returned* (the seqlock
//!    validation discards it) but never *dereferenced* or used to index.
//!
//! Wrong answers are fine; crashes and infinite loops are not.
//!
//! # Memory ordering
//!
//! The counter protocol lives in [`ShardedTable`](crate::ShardedTable):
//! writers do
//! `fetch_add(1, AcqRel)` on entry (odd) and `fetch_add(1, Release)` on
//! exit (even); readers load the counter with `Acquire` before probing
//! and re-check it after an `Acquire` fence. A validated read is thus
//! fully ordered against every writer critical section: the initial
//! `Acquire` load sees all writes published by the previous `Release`
//! increment, and the trailing fence + re-check proves no writer entered
//! during the probe. The slot reads themselves are `read_volatile` — not
//! atomic, so formally a data race, which is the standard seqlock
//! compromise: the values are discarded unless validation proves the race
//! did not happen.

use crate::simd::{scan_pairs, ProbeKind, ScanOutcome};
use crate::Pair;

/// Number of optimistic attempts before a reader falls back to the lock.
pub const OPTIMISTIC_RETRIES: usize = 2;

/// Slots copied per volatile window. A power of two, so every window
/// slice handed to the scan kernels keeps their power-of-two length
/// contract, and small enough to live on the stack (32 × 16 B = 512 B).
const WINDOW: usize = 32;

/// Slots copied in the *first* window. At moderate load almost every
/// probe terminates within a handful of slots of home, so the first copy
/// is kept small (8 × 16 B = 128 B) and only the rare long probe pays for
/// full windows. Subsequent windows may re-cover up to
/// `WINDOW - FIRST_WINDOW` already-scanned slots after wrapping — benign
/// for a circular scan, and the stride still grows by ≥ `FIRST_WINDOW`
/// per iteration, so termination stays capacity-bounded.
const FIRST_WINDOW: usize = 8;

/// Capacity-bounded optimistic probe over an AoS pair array (LP-family
/// probe order: `home, home+1, …` circular): volatile-copy windows of
/// slots into a stack buffer, then run the configured scan kernel —
/// scalar or SIMD — on the private copy. Returns the candidate value if
/// the snapshot contains `key`, `None` if the probe hit an empty slot or
/// exhausted the table.
///
/// # Safety
///
/// `slots` may alias a concurrently mutating table (see the module docs);
/// the caller must validate via the seqlock stamp before trusting the
/// answer. `mask + 1` must equal `slots.len()` (a power of two).
pub(crate) unsafe fn probe_pairs_volatile(
    slots: &[Pair],
    mask: usize,
    home: usize,
    key: u64,
    kind: ProbeKind,
) -> Option<u64> {
    let cap = mask + 1;
    let base = slots.as_ptr();
    // First window: constant-size copy, fully overwritten before use, so
    // the compiler unrolls it and elides any buffer initialization — the
    // common short probe never touches the big staging buffer below.
    let mut scanned = 0usize;
    if cap >= FIRST_WINDOW {
        let mut first = [Pair::empty(); FIRST_WINDOW];
        for (i, b) in first.iter_mut().enumerate() {
            *b = std::ptr::read_volatile(base.add((home + i) & mask));
        }
        // A circular scan of the private copy from 0 is a straight scan:
        // the copy already starts at the probe position.
        match scan_pairs(&first, 0, key, kind).outcome {
            ScanOutcome::FoundKey(pos) => return Some(first[pos].value),
            ScanOutcome::FoundEmpty(_) => return None,
            ScanOutcome::Exhausted => {}
        }
        scanned = FIRST_WINDOW;
    }
    let w = WINDOW.min(cap);
    let mut buf = [Pair::empty(); WINDOW];
    // The loop advances by `w` masked slots per iteration and stops once
    // `cap` slots are covered (the last window may re-cover up to
    // `WINDOW - FIRST_WINDOW` already-scanned slots after wrapping —
    // benign for a circular scan) — termination never depends on table
    // invariants a racing writer could break.
    while scanned < cap {
        for (i, b) in buf[..w].iter_mut().enumerate() {
            *b = std::ptr::read_volatile(base.add((home + scanned + i) & mask));
        }
        match scan_pairs(&buf[..w], 0, key, kind).outcome {
            ScanOutcome::FoundKey(pos) => return Some(buf[pos].value),
            ScanOutcome::FoundEmpty(_) => return None,
            ScanOutcome::Exhausted => {}
        }
        scanned += w;
    }
    None
}

/// The SoA twin of [`probe_pairs_volatile`]: scans a dense key array and
/// returns the *slot index* where the snapshot contains `key` (the caller
/// volatile-reads the value array itself), or `None` for absent /
/// exhausted.
///
/// # Safety
///
/// As [`probe_pairs_volatile`].
pub(crate) unsafe fn probe_keys_volatile(
    keys: &[u64],
    mask: usize,
    home: usize,
    key: u64,
    kind: ProbeKind,
) -> Option<usize> {
    use crate::simd::scan_keys;
    let cap = mask + 1;
    let base = keys.as_ptr();
    let mut scanned = 0usize;
    if cap >= FIRST_WINDOW {
        let mut first = [0u64; FIRST_WINDOW];
        for (i, b) in first.iter_mut().enumerate() {
            *b = std::ptr::read_volatile(base.add((home + i) & mask));
        }
        match scan_keys(&first, 0, key, kind).outcome {
            ScanOutcome::FoundKey(pos) => return Some((home + pos) & mask),
            ScanOutcome::FoundEmpty(_) => return None,
            ScanOutcome::Exhausted => {}
        }
        scanned = FIRST_WINDOW;
    }
    let w = WINDOW.min(cap);
    let mut buf = [0u64; WINDOW];
    while scanned < cap {
        for (i, b) in buf[..w].iter_mut().enumerate() {
            *b = std::ptr::read_volatile(base.add((home + scanned + i) & mask));
        }
        match scan_keys(&buf[..w], 0, key, kind).outcome {
            ScanOutcome::FoundKey(pos) => return Some((home + scanned + pos) & mask),
            ScanOutcome::FoundEmpty(_) => return None,
            ScanOutcome::Exhausted => {}
        }
        scanned += w;
    }
    None
}

/// A racy, validated-later read view over a hash table — the read side of
/// the seqlock protocol (see the [module docs](self)).
///
/// Every method has a conservative default, so implementing the trait is
/// opt-in per scheme: `supports_optimistic()` defaults to `false` and
/// [`ReadView::lookup_optimistic`] to "bail to the locked path".
pub trait ReadView {
    /// Whether [`ReadView::lookup_optimistic`] can do better than bailing.
    ///
    /// For growing tables this is dynamic: a
    /// [`DynamicTable`](crate::DynamicTable) only supports optimistic
    /// probing while it retains retired generations (see
    /// [`ReadView::retain_retired_allocations`]).
    fn supports_optimistic(&self) -> bool {
        false
    }

    /// Probe for `key` without any synchronization, tolerating a racing
    /// writer.
    ///
    /// Returns `None` to bail (the caller must use the locked path), or
    /// `Some(answer)` — a *candidate* answer that is only correct if the
    /// caller's seqlock validation proves no writer ran during the probe.
    ///
    /// # Safety
    ///
    /// `self` may alias a table that another thread is concurrently
    /// mutating. The caller must
    ///
    /// * only invoke this between a seqlock stamp acquisition and
    ///   validation, and discard the result if validation fails;
    /// * ensure the table outlives the call (the owning shard must not be
    ///   dropped mid-probe).
    ///
    /// Implementations must uphold the soundness rules in the
    /// [module docs](self): in-bounds reads only, capacity-bounded loops,
    /// volatile slot reads, and no dereference of raced data.
    unsafe fn lookup_optimistic(&self, key: u64) -> Option<Option<u64>> {
        let _ = key;
        None
    }

    /// Enable (or disable) retention of retired allocations.
    ///
    /// Tables that replace whole allocations (generation swaps in
    /// [`DynamicTable`](crate::DynamicTable)) must keep the old
    /// allocation alive while lock-free readers may still hold a pointer
    /// into it. With retention **off** (the default) replaced allocations
    /// are freed immediately — correct for exclusively owned tables, and
    /// what non-growing schemes (which never replace allocations) do
    /// anyway.
    fn retain_retired_allocations(&mut self, on: bool) {
        let _ = on;
    }

    /// Bytes currently pinned by retired allocations (0 when retention is
    /// off or nothing has been retired).
    fn retired_bytes(&self) -> usize {
        0
    }

    /// Drop all retired allocations. Sound because `&mut self` proves no
    /// concurrent reader exists.
    fn reclaim_retired(&mut self) {}
}

/// Boxed views forward through the vtable, mirroring the
/// `impl HashTable for Box<T>` blanket so builder-produced trait objects
/// keep their optimistic path.
impl<T: ReadView + ?Sized> ReadView for Box<T> {
    fn supports_optimistic(&self) -> bool {
        (**self).supports_optimistic()
    }

    unsafe fn lookup_optimistic(&self, key: u64) -> Option<Option<u64>> {
        (**self).lookup_optimistic(key)
    }

    fn retain_retired_allocations(&mut self, on: bool) {
        (**self).retain_retired_allocations(on)
    }

    fn retired_bytes(&self) -> usize {
        (**self).retired_bytes()
    }

    fn reclaim_retired(&mut self) {
        (**self).reclaim_retired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HashTable, InsertOutcome, TableError};

    struct Plain;
    impl ReadView for Plain {}
    impl HashTable for Plain {
        fn insert(&mut self, _k: u64, _v: u64) -> Result<InsertOutcome, TableError> {
            Ok(InsertOutcome::Inserted)
        }
        fn lookup(&self, _k: u64) -> Option<u64> {
            None
        }
        fn delete(&mut self, _k: u64) -> Option<u64> {
            None
        }
        fn len(&self) -> usize {
            0
        }
        fn capacity(&self) -> usize {
            1
        }
        fn memory_bytes(&self) -> usize {
            0
        }
        fn for_each(&self, _f: &mut dyn FnMut(u64, u64)) {}
        fn display_name(&self) -> String {
            "Plain".into()
        }
    }

    #[test]
    fn defaults_are_conservative() {
        let mut p = Plain;
        assert!(!p.supports_optimistic());
        assert_eq!(unsafe { p.lookup_optimistic(7) }, None);
        assert_eq!(p.retired_bytes(), 0);
        p.retain_retired_allocations(true);
        p.reclaim_retired();
    }

    #[test]
    fn boxed_view_forwards() {
        let b: Box<dyn HashTable + Send> = Box::new(Plain);
        assert!(!b.supports_optimistic());
        assert_eq!(unsafe { b.lookup_optimistic(7) }, None);
    }
}
