//! The paper's decision graph (Figure 8), executable.
//!
//! Section 8 condenses the whole study into a practitioner's decision
//! graph. This module encodes it as a pure function so a query optimizer
//! (or a test) can ask: *given this workload profile, which hash table
//! should I build?* The edges below map one-to-one onto the paper's
//! inline conclusions:
//!
//! * §5.1: at load factors < 50%, `LPMult` "is the way to go if most
//!   queries are successful (≥ 50%), and ChainedH24 must be considered
//!   otherwise".
//! * §5.2: Mult over Murmur throughout ("no hash table is the absolute
//!   best using Murmur"); for inserts "QP seems to be the best option in
//!   general", except dense keys + Mult where LP wins; for lookups "RH
//!   seems to be an excellent all-rounder unless the hash table is
//!   expected to be very full [→ CuckooH4, from ~80%] or the amount of
//!   unsuccessful queries is rather large [→ ChainedH24, memory
//!   permitting]".
//! * §6: "in a write-heavy workload, quadratic probing looks as the best
//!   option in general"; chained and cuckoo "should be avoided for
//!   write-heavy workloads".
//!
//! One edge extends the paper's graph: bucketized fingerprint probing
//! ([`crate::FingerprintTable`], a scheme the study predates) takes the
//! static miss-heavy band between chained hashing's memory ceiling and
//! cuckoo's very-high-load regime — a miss there is rejected by one
//! 16-slot tag comparison without touching the key array, which is
//! exactly the cluster-scanning cost RH's early abort only mitigates.

/// Is the table static once built (OLAP/WORM) or continuously updated
/// (OLTP/RW)?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutability {
    /// Write-once-read-many: built, then only probed.
    Static,
    /// Read-write with growth: inserts/deletes interleaved with lookups.
    Dynamic,
}

/// A point in the paper's requirements space, dimensions 1–5.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Planned load factor α = n/l (for chained candidates this is the
    /// memory-equivalent α of §4.5).
    pub load_factor: f64,
    /// Fraction of lookups expected to find their key (1.0 = all hit).
    pub successful_ratio: f64,
    /// Fraction of operations that are writes (inserts/deletes); lookups
    /// make up the rest. `> 0.5` is the paper's "write-heavy".
    pub write_ratio: f64,
    /// Whether keys are densely packed integers (auto-increment style) —
    /// the distribution where Mult turns LP near-perfect.
    pub dense_keys: bool,
    /// Static (WORM) or dynamic (RW) usage.
    pub mutability: Mutability,
}

impl WorkloadProfile {
    /// A static, all-successful, half-full, sparse-key profile — a neutral
    /// starting point to tweak.
    pub fn baseline() -> Self {
        Self {
            load_factor: 0.5,
            successful_ratio: 1.0,
            write_ratio: 0.0,
            dense_keys: false,
            mutability: Mutability::Static,
        }
    }
}

/// The hash tables the graph can recommend. All use Multiply-shift except
/// chained hashing, per the paper's "Mult governs over Murmur" finding
/// (Mult there too).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TableChoice {
    /// ChainedH24 with Mult: unsuccessful-heavy lookups at modest load.
    ChainedH24Mult,
    /// Linear probing with Mult: successful-heavy reads, low load, and the
    /// dense-key sweet spot.
    LPMult,
    /// Quadratic probing with Mult: write-heavy workloads and inserts at
    /// high load.
    QPMult,
    /// Robin Hood with Mult: the read all-rounder at mid-to-high load.
    RHMult,
    /// Cuckoo hashing on four tables with Mult: very high load factors,
    /// read-mostly.
    CuckooH4Mult,
    /// Bucketized fingerprint probing with Mult: static miss-heavy
    /// lookups past chained hashing's memory budget (beyond the paper's
    /// grid).
    FpMult,
}

impl TableChoice {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            TableChoice::ChainedH24Mult => "ChainedH24Mult",
            TableChoice::LPMult => "LPMult",
            TableChoice::QPMult => "QPMult",
            TableChoice::RHMult => "RHMult",
            TableChoice::CuckooH4Mult => "CuckooH4Mult",
            TableChoice::FpMult => "FPMult",
        }
    }
}

/// Walk the decision graph of Figure 8.
///
/// Returns the scheme the paper's evidence recommends for `p`. Thresholds
/// (50% load, 50% successful, 70%/80%/90% load, write-heavy) are the ones
/// printed in the figure and the inline conclusions.
pub fn recommend(p: &WorkloadProfile) -> TableChoice {
    let write_heavy = p.write_ratio > 0.5;

    // Low load factor: collisions are rare, code simplicity dominates
    // (§5.1). The successful/unsuccessful ratio picks between LP and
    // chained; writes don't change the picture because LP inserts at low
    // load are in-place and cheap.
    if p.load_factor < 0.5 {
        return if p.successful_ratio >= 0.5 || write_heavy {
            TableChoice::LPMult
        } else {
            TableChoice::ChainedH24Mult
        };
    }

    // High load, write-heavy: §6's conclusion — QP in general; the dense
    // exception favours LP because Mult lays dense keys out contiguously
    // and LP then extends runs instead of scattering them (§5.2).
    if write_heavy {
        return if p.dense_keys { TableChoice::LPMult } else { TableChoice::QPMult };
    }

    // High load, read-mostly.
    if p.mutability == Mutability::Dynamic {
        // The table keeps growing: insert cost still matters. Up to 70%
        // the three LP-family schemes tie (§6, Fig. 5a–b) — prefer LP on
        // dense keys, RH otherwise for its lookup robustness. Beyond 70%,
        // QP's collision scattering wins (§6, Fig. 5c).
        if p.load_factor <= 0.7 {
            return if p.dense_keys { TableChoice::LPMult } else { TableChoice::RHMult };
        }
        return TableChoice::QPMult;
    }

    // Static read-only table at ≥50% load (the WORM lookup cells of
    // Fig. 6).
    if p.successful_ratio < 0.5 {
        // Unsuccessful-heavy. ChainedH24 is the overall winner while its
        // memory budget holds (≤ ~50% equivalent load, §4.5); past that
        // the constant-probe schemes take over: CuckooH4 from ~80% load,
        // and in between the fingerprint table's tag filter — a miss is
        // rejected by one group comparison without touching key lines,
        // which beats even RH's cache-line early abort.
        if p.load_factor <= 0.5 {
            return TableChoice::ChainedH24Mult;
        }
        return if p.load_factor >= 0.8 { TableChoice::CuckooH4Mult } else { TableChoice::FpMult };
    }

    // Successful-heavy static reads: RH is the all-rounder; at very high
    // load CuckooH4's flat probe count wins (§5.2, "from a load factor of
    // 80% on, CuckooH4 clearly surpasses the other methods"); on dense
    // keys up to ~70% LP matches RH with simpler code.
    if p.load_factor >= 0.9 {
        return TableChoice::CuckooH4Mult;
    }
    if p.dense_keys && p.load_factor <= 0.7 {
        return TableChoice::LPMult;
    }
    TableChoice::RHMult
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(
        load_factor: f64,
        successful_ratio: f64,
        write_ratio: f64,
        dense_keys: bool,
        mutability: Mutability,
    ) -> WorkloadProfile {
        WorkloadProfile { load_factor, successful_ratio, write_ratio, dense_keys, mutability }
    }

    #[test]
    fn low_load_successful_reads_pick_lp() {
        // §5.1 conclusion, verbatim case.
        let p = profile(0.25, 1.0, 0.0, false, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::LPMult);
        let p = profile(0.45, 0.5, 0.0, true, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::LPMult);
    }

    #[test]
    fn low_load_unsuccessful_reads_pick_chained() {
        let p = profile(0.35, 0.25, 0.0, false, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::ChainedH24Mult);
        let p = profile(0.25, 0.0, 0.0, true, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::ChainedH24Mult);
    }

    #[test]
    fn write_heavy_high_load_picks_qp() {
        // §6 conclusion.
        let p = profile(0.7, 1.0, 0.8, false, Mutability::Dynamic);
        assert_eq!(recommend(&p), TableChoice::QPMult);
        let p = profile(0.9, 0.5, 0.6, false, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::QPMult);
    }

    #[test]
    fn write_heavy_dense_picks_lp() {
        // §5.2: dense + Mult is LP's best case, 45M vs 35M ins/s over QP.
        let p = profile(0.9, 1.0, 0.8, true, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::LPMult);
    }

    #[test]
    fn very_full_static_reads_pick_cuckoo() {
        // §5.2: "from a load factor of 80% on, CuckooH4 clearly surpasses".
        let p = profile(0.9, 1.0, 0.0, false, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::CuckooH4Mult);
        let p = profile(0.85, 0.25, 0.0, false, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::CuckooH4Mult);
    }

    #[test]
    fn mid_load_static_reads_pick_rh() {
        // Fig. 6: RH dominates the 50–70% successful-lookup cells.
        let p = profile(0.7, 0.75, 0.1, false, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::RHMult);
    }

    #[test]
    fn mid_load_miss_heavy_static_reads_pick_fingerprint() {
        // Unsuccessful-heavy past chained hashing's budget: the tag
        // filter rejects misses without touching key lines.
        let p = profile(0.7, 0.0, 0.0, false, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::FpMult);
        let p = profile(0.6, 0.25, 0.0, true, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::FpMult);
        // Below 50% load chained still wins; at 80%+ cuckoo takes over.
        let p = profile(0.45, 0.0, 0.0, false, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::ChainedH24Mult);
        let p = profile(0.85, 0.0, 0.0, false, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::CuckooH4Mult);
    }

    #[test]
    fn unsuccessful_heavy_at_half_load_picks_chained() {
        let p = profile(0.5, 0.25, 0.0, false, Mutability::Static);
        assert_eq!(recommend(&p), TableChoice::ChainedH24Mult);
    }

    #[test]
    fn dynamic_read_mostly_tracks_load() {
        let p = profile(0.5, 0.9, 0.2, false, Mutability::Dynamic);
        assert_eq!(recommend(&p), TableChoice::RHMult);
        let p = profile(0.5, 0.9, 0.2, true, Mutability::Dynamic);
        assert_eq!(recommend(&p), TableChoice::LPMult);
        let p = profile(0.9, 0.9, 0.2, false, Mutability::Dynamic);
        assert_eq!(recommend(&p), TableChoice::QPMult);
    }

    #[test]
    fn total_over_the_whole_requirements_space() {
        // The graph must produce an answer for every profile — no panics,
        // no unreachable corners (dimensionality sweep).
        let mut seen = std::collections::HashSet::new();
        for lf in [0.1, 0.25, 0.45, 0.5, 0.65, 0.7, 0.8, 0.9, 0.99] {
            for sr in [0.0, 0.25, 0.5, 0.75, 1.0] {
                for wr in [0.0, 0.2, 0.5, 0.6, 1.0] {
                    for dense in [false, true] {
                        for m in [Mutability::Static, Mutability::Dynamic] {
                            let p = profile(lf, sr, wr, dense, m);
                            seen.insert(recommend(&p));
                        }
                    }
                }
            }
        }
        // Every recommendation class is reachable.
        assert_eq!(seen.len(), 6, "unreachable recommendations: {seen:?}");
    }

    #[test]
    fn baseline_profile_is_sensible() {
        assert_eq!(recommend(&WorkloadProfile::baseline()), TableChoice::RHMult);
    }
}
