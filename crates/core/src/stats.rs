//! Displacement and cluster statistics for open-addressing tables.
//!
//! The paper reasons about performance through two structural quantities:
//!
//! * **Displacement** (§2.2): how many probe steps an entry sits from its
//!   home slot. Total displacement predicts successful-lookup cost; its
//!   *variance* is what Robin Hood minimizes; its *maximum* bounds
//!   worst-case probes.
//! * **Clusters** (§2.2, §5): maximal runs of non-empty slots (circular).
//!   Unsuccessful LP lookups scan to the end of a cluster, so cluster
//!   length distribution predicts miss cost; the paper's discussion of
//!   primary clustering and of Mult's arithmetic-progression behaviour on
//!   dense keys is directly observable here.
//!
//! The statistics functions work on raw slot arrays so they apply to every
//! probing scheme; each table exposes convenience methods.

use crate::{HashTable, LinearProbing, Pair, QuadraticProbing, RobinHood};
use hashfn::HashFn64;

/// Summary of entry displacements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DisplacementStats {
    /// Live entries measured.
    pub entries: usize,
    /// Sum of displacements (the paper's "total displacement").
    pub total: u64,
    /// Mean displacement.
    pub mean: f64,
    /// Maximum displacement (the `dmax` of §2.4).
    pub max: usize,
    /// Population variance of displacement — the quantity Robin Hood
    /// hashing minimizes relative to LP.
    pub variance: f64,
}

/// Summary of occupied-slot clusters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterStats {
    /// Number of maximal non-empty runs (tombstones count as non-empty —
    /// they connect clusters, which is exactly their cost).
    pub clusters: usize,
    /// Longest cluster.
    pub max_len: usize,
    /// Mean cluster length.
    pub mean_len: f64,
    /// Non-empty slots (entries + tombstones).
    pub non_empty: usize,
    /// Tombstone slots.
    pub tombstones: usize,
}

/// Compute displacement statistics given each entry's displacement via
/// `disp(slot_index, key)`.
pub fn displacement_stats_with<F>(slots: &[Pair], mut disp: F) -> DisplacementStats
where
    F: FnMut(usize, u64) -> usize,
{
    let mut total = 0u64;
    let mut max = 0usize;
    let mut entries = 0usize;
    let mut sum_sq = 0f64;
    for (i, p) in slots.iter().enumerate() {
        if p.is_occupied() {
            let d = disp(i, p.key);
            total += d as u64;
            max = max.max(d);
            entries += 1;
            sum_sq += (d as f64) * (d as f64);
        }
    }
    let mean = if entries == 0 { 0.0 } else { total as f64 / entries as f64 };
    let variance = if entries == 0 { 0.0 } else { sum_sq / entries as f64 - mean * mean };
    DisplacementStats { entries, total, mean, max, variance }
}

/// Compute cluster statistics over a circular slot array.
pub fn cluster_stats(slots: &[Pair]) -> ClusterStats {
    let len = slots.len();
    let non_empty_flags: Vec<bool> = slots.iter().map(|p| !p.is_empty()).collect();
    let non_empty = non_empty_flags.iter().filter(|&&b| b).count();
    let tombstones = slots.iter().filter(|p| p.is_tombstone()).count();
    if non_empty == len {
        // One cluster covering the whole (pathological) table.
        return ClusterStats {
            clusters: 1,
            max_len: len,
            mean_len: len as f64,
            non_empty,
            tombstones,
        };
    }
    // Start scanning from an empty slot so circular clusters are not split.
    let start = non_empty_flags.iter().position(|&b| !b).unwrap_or(0);
    let mut clusters = 0usize;
    let mut max_len = 0usize;
    let mut run = 0usize;
    for step in 0..len {
        let pos = (start + step) % len;
        if non_empty_flags[pos] {
            run += 1;
        } else if run > 0 {
            clusters += 1;
            max_len = max_len.max(run);
            run = 0;
        }
    }
    if run > 0 {
        clusters += 1;
        max_len = max_len.max(run);
    }
    let mean_len = if clusters == 0 { 0.0 } else { non_empty as f64 / clusters as f64 };
    ClusterStats { clusters, max_len, mean_len, non_empty, tombstones }
}

impl<H: HashFn64> LinearProbing<H> {
    /// Displacement statistics (linear distance from home slot).
    pub fn displacement_stats(&self) -> DisplacementStats {
        let mask = self.capacity() - 1;
        let slots = self.raw_slots();
        displacement_stats_with(slots, |i, k| {
            let home = crate::home_slot(&self.hash, k, self.bits);
            (i + mask + 1 - home) & mask
        })
    }

    /// Cluster statistics.
    pub fn cluster_stats(&self) -> ClusterStats {
        cluster_stats(self.raw_slots())
    }
}

impl<H: HashFn64> RobinHood<H> {
    /// Displacement statistics (linear distance from home slot). By
    /// design, total and mean match an LP table with the same contents;
    /// variance and max are smaller.
    pub fn displacement_stats(&self) -> DisplacementStats {
        displacement_stats_with(self.raw_slots(), |i, _| self.displacement_at(i))
    }

    /// Cluster statistics.
    pub fn cluster_stats(&self) -> ClusterStats {
        cluster_stats(self.raw_slots())
    }
}

impl<H: HashFn64> QuadraticProbing<H> {
    /// Displacement statistics, where displacement is the number of
    /// triangular probe steps from the home slot to the entry's position.
    pub fn displacement_stats(&self) -> DisplacementStats {
        let slots = self.raw_slots();
        let mask = slots.len() - 1;
        displacement_stats_with(slots, |target, k| {
            let mut pos = crate::home_slot(self.hash_fn(), k, (mask + 1).trailing_zeros() as u8);
            // Follow the triangular sequence until we reach the slot.
            for i in 1..=(mask as u64 + 1) {
                if pos == target {
                    return (i - 1) as usize;
                }
                pos = (pos + i as usize) & mask;
            }
            unreachable!("entry not on its own probe sequence");
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HashTable, EMPTY_KEY, TOMBSTONE_KEY};
    use hashfn::{MultShift, Murmur};

    fn pair(k: u64) -> Pair {
        Pair { key: k, value: 0 }
    }

    #[test]
    fn cluster_stats_empty_table() {
        let slots = vec![Pair::empty(); 8];
        let s = cluster_stats(&slots);
        assert_eq!(s.clusters, 0);
        assert_eq!(s.max_len, 0);
        assert_eq!(s.non_empty, 0);
    }

    #[test]
    fn cluster_stats_counts_runs() {
        // Layout: [K K _ K _ _ T K]: circular run 7,0,1 (len 3), run 3 (1),
        // run 6 is tombstone-connected to 7: positions 6,7 wrap with 0,1.
        let mut slots = vec![Pair::empty(); 8];
        slots[0] = pair(1);
        slots[1] = pair(2);
        slots[3] = pair(3);
        slots[6] = Pair { key: TOMBSTONE_KEY, value: 0 };
        slots[7] = pair(4);
        let s = cluster_stats(&slots);
        // Runs: {6,7,0,1} (tombstone joins) and {3}.
        assert_eq!(s.clusters, 2);
        assert_eq!(s.max_len, 4);
        assert_eq!(s.non_empty, 5);
        assert_eq!(s.tombstones, 1);
        assert!((s.mean_len - 2.5).abs() < 1e-9);
    }

    #[test]
    fn cluster_stats_full_table() {
        let slots = vec![pair(9); 8];
        let s = cluster_stats(&slots);
        assert_eq!(s.clusters, 1);
        assert_eq!(s.max_len, 8);
    }

    #[test]
    fn displacement_zero_for_perfect_placement() {
        let mut t: LinearProbing<MultShift> = LinearProbing::with_hash(8, MultShift::default());
        // Dense keys + Mult: nearly collision-free placement.
        for k in 1..=64u64 {
            t.insert(k, k).unwrap();
        }
        let s = t.displacement_stats();
        assert_eq!(s.entries, 64);
        assert!(s.mean < 0.5, "dense+Mult should be near-perfect, mean {}", s.mean);
    }

    #[test]
    fn lp_and_rh_have_equal_total_displacement() {
        // §2.4: RH does not change total displacement versus LP, only its
        // distribution.
        let h = Murmur::with_seed(7);
        let mut lp = LinearProbing::with_hash(10, h);
        let mut rh = RobinHood::with_hash(10, h);
        let mut x = 1u64;
        for _ in 0..900 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = x >> 4;
            lp.insert(k, 0).unwrap();
            rh.insert(k, 0).unwrap();
        }
        let sl = lp.displacement_stats();
        let sr = rh.displacement_stats();
        assert_eq!(sl.entries, sr.entries);
        assert_eq!(sl.total, sr.total, "RH must preserve total displacement");
        assert!(
            sr.variance <= sl.variance,
            "RH variance {} must not exceed LP variance {}",
            sr.variance,
            sl.variance
        );
        assert!(sr.max <= sl.max, "RH max {} vs LP max {}", sr.max, sl.max);
    }

    #[test]
    fn qp_displacement_counts_probe_steps() {
        let mut t: QuadraticProbing<MultShift> = QuadraticProbing::with_hash(4, MultShift::new(1));
        for k in 1..=4u64 {
            t.insert(k, k).unwrap();
        }
        // Keys at offsets 0, 1, 3, 6 → displacements 0, 1, 2, 3 steps.
        let s = t.displacement_stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.total, 1 + 2 + 3);
        assert_eq!(s.max, 3);
    }

    #[test]
    fn stats_ignore_control_slots() {
        let slots = vec![
            Pair { key: TOMBSTONE_KEY, value: 0 },
            pair(5),
            Pair { key: EMPTY_KEY, value: 0 },
            pair(6),
        ];
        let s = displacement_stats_with(&slots, |_, _| 2);
        assert_eq!(s.entries, 2);
        assert_eq!(s.total, 4);
        assert_eq!(s.max, 2);
        assert!((s.variance - 0.0).abs() < 1e-12);
    }
}
