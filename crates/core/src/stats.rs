//! Displacement and cluster statistics for open-addressing tables.
//!
//! The paper reasons about performance through two structural quantities:
//!
//! * **Displacement** (§2.2): how many probe steps an entry sits from its
//!   home slot. Total displacement predicts successful-lookup cost; its
//!   *variance* is what Robin Hood minimizes; its *maximum* bounds
//!   worst-case probes.
//! * **Clusters** (§2.2, §5): maximal runs of non-empty slots (circular).
//!   Unsuccessful LP lookups scan to the end of a cluster, so cluster
//!   length distribution predicts miss cost; the paper's discussion of
//!   primary clustering and of Mult's arithmetic-progression behaviour on
//!   dense keys is directly observable here.
//!
//! The statistics functions work on raw slot arrays so they apply to every
//! probing scheme; each table exposes convenience methods.
//!
//! # Offline vs. runtime statistics
//!
//! [`DisplacementStats`] / [`ClusterStats`] are *offline*: they walk the
//! whole slot array and are meant for analysis, not the hot path. The
//! second half of this module is the *runtime* side: [`RuntimeStats`] is a
//! set of relaxed-atomic counters cheap enough to update from the shared
//! read path, and [`TableStats`] is its point-in-time snapshot. These are
//! the live signals (miss ratio, probe length, load) the adaptive
//! migration controller in [`crate::dynamic`] feeds back into the paper's
//! Figure 8 decision graph.

use crate::{HashTable, LinearProbing, Pair, QuadraticProbing, RobinHood};
use hashfn::HashFn64;
use std::sync::atomic::{AtomicU64, Ordering};

/// Summary of entry displacements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DisplacementStats {
    /// Live entries measured.
    pub entries: usize,
    /// Sum of displacements (the paper's "total displacement").
    pub total: u64,
    /// Mean displacement.
    pub mean: f64,
    /// Maximum displacement (the `dmax` of §2.4).
    pub max: usize,
    /// Population variance of displacement — the quantity Robin Hood
    /// hashing minimizes relative to LP.
    pub variance: f64,
}

/// Summary of occupied-slot clusters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterStats {
    /// Number of maximal non-empty runs (tombstones count as non-empty —
    /// they connect clusters, which is exactly their cost).
    pub clusters: usize,
    /// Longest cluster.
    pub max_len: usize,
    /// Mean cluster length.
    pub mean_len: f64,
    /// Non-empty slots (entries + tombstones).
    pub non_empty: usize,
    /// Tombstone slots.
    pub tombstones: usize,
}

/// Compute displacement statistics given each entry's displacement via
/// `disp(slot_index, key)`.
pub fn displacement_stats_with<F>(slots: &[Pair], mut disp: F) -> DisplacementStats
where
    F: FnMut(usize, u64) -> usize,
{
    let mut total = 0u64;
    let mut max = 0usize;
    let mut entries = 0usize;
    let mut sum_sq = 0f64;
    for (i, p) in slots.iter().enumerate() {
        if p.is_occupied() {
            let d = disp(i, p.key);
            total += d as u64;
            max = max.max(d);
            entries += 1;
            sum_sq += (d as f64) * (d as f64);
        }
    }
    let mean = if entries == 0 { 0.0 } else { total as f64 / entries as f64 };
    let variance = if entries == 0 { 0.0 } else { sum_sq / entries as f64 - mean * mean };
    DisplacementStats { entries, total, mean, max, variance }
}

/// Compute cluster statistics over a circular slot array.
pub fn cluster_stats(slots: &[Pair]) -> ClusterStats {
    let len = slots.len();
    let non_empty_flags: Vec<bool> = slots.iter().map(|p| !p.is_empty()).collect();
    let non_empty = non_empty_flags.iter().filter(|&&b| b).count();
    let tombstones = slots.iter().filter(|p| p.is_tombstone()).count();
    if non_empty == len {
        // One cluster covering the whole (pathological) table.
        return ClusterStats {
            clusters: 1,
            max_len: len,
            mean_len: len as f64,
            non_empty,
            tombstones,
        };
    }
    // Start scanning from an empty slot so circular clusters are not split.
    let start = non_empty_flags.iter().position(|&b| !b).unwrap_or(0);
    let mut clusters = 0usize;
    let mut max_len = 0usize;
    let mut run = 0usize;
    for step in 0..len {
        let pos = (start + step) % len;
        if non_empty_flags[pos] {
            run += 1;
        } else if run > 0 {
            clusters += 1;
            max_len = max_len.max(run);
            run = 0;
        }
    }
    if run > 0 {
        clusters += 1;
        max_len = max_len.max(run);
    }
    let mean_len = if clusters == 0 { 0.0 } else { non_empty as f64 / clusters as f64 };
    ClusterStats { clusters, max_len, mean_len, non_empty, tombstones }
}

impl<H: HashFn64> LinearProbing<H> {
    /// Displacement statistics (linear distance from home slot).
    pub fn displacement_stats(&self) -> DisplacementStats {
        let mask = self.capacity() - 1;
        let slots = self.raw_slots();
        displacement_stats_with(slots, |i, k| {
            let home = crate::home_slot(&self.hash, k, self.bits);
            (i + mask + 1 - home) & mask
        })
    }

    /// Cluster statistics.
    pub fn cluster_stats(&self) -> ClusterStats {
        cluster_stats(self.raw_slots())
    }
}

impl<H: HashFn64> RobinHood<H> {
    /// Displacement statistics (linear distance from home slot). By
    /// design, total and mean match an LP table with the same contents;
    /// variance and max are smaller.
    pub fn displacement_stats(&self) -> DisplacementStats {
        displacement_stats_with(self.raw_slots(), |i, _| self.displacement_at(i))
    }

    /// Cluster statistics.
    pub fn cluster_stats(&self) -> ClusterStats {
        cluster_stats(self.raw_slots())
    }
}

impl<H: HashFn64> QuadraticProbing<H> {
    /// Displacement statistics, where displacement is the number of
    /// triangular probe steps from the home slot to the entry's position.
    pub fn displacement_stats(&self) -> DisplacementStats {
        let slots = self.raw_slots();
        let mask = slots.len() - 1;
        displacement_stats_with(slots, |target, k| {
            let mut pos = crate::home_slot(self.hash_fn(), k, (mask + 1).trailing_zeros() as u8);
            // Follow the triangular sequence until we reach the slot.
            for i in 1..=(mask as u64 + 1) {
                if pos == target {
                    return (i - 1) as usize;
                }
                pos = (pos + i as usize) & mask;
            }
            unreachable!("entry not on its own probe sequence");
        })
    }
}

/// Lookups per EWMA window: the miss counters are folded into the
/// exponential average once this many lookups accumulate, so the hot path
/// pays only `fetch_add`s and the division happens once per window.
pub const EWMA_WINDOW: u64 = 1024;

/// EWMA smoothing: `ewma += (window_ratio - ewma) / 2^EWMA_SHIFT`
/// (α = 1/8). Eight windows ≈ 8 Ki lookups to mostly forget an old phase —
/// fast enough to track a workload shift, slow enough to ignore one
/// unlucky batch.
const EWMA_SHIFT: u32 = 3;

/// Q32 fixed point for the atomically stored miss-ratio EWMA.
const EWMA_FP_ONE: u64 = 1 << 32;

/// Point-in-time snapshot of a table's runtime signals, taken with
/// [`RuntimeStats::snapshot`] (or aggregated across shards /
/// generations). All counters are lifetime totals; `miss_ewma` is the
/// recency-weighted miss ratio the adaptive controller acts on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TableStats {
    /// Single-key lookups plus batch lookup elements observed.
    pub lookups: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Insert operations (single-key and batch elements).
    pub inserts: u64,
    /// Delete operations (single-key and batch elements).
    pub deletes: u64,
    /// Lookups whose probe length was sampled.
    pub probe_samples: u64,
    /// Total probe steps over the sampled lookups (slots for LP/QP/RH,
    /// 16-slot groups for the fingerprint table — a scheme-relative cost
    /// unit, comparable against the same scheme's steady state).
    pub probe_steps: u64,
    /// Exponentially weighted moving miss ratio in `[0, 1]`, folded every
    /// [`EWMA_WINDOW`] lookups. Falls back to the lifetime ratio until the
    /// first window completes.
    pub miss_ewma: f64,
    /// Completed generation rebuilds (growth or migration) this table has
    /// started, from [`crate::DynamicTable::rehash_count`].
    pub rehashes: u64,
    /// Cross-scheme migrations the migration engine has begun.
    pub scheme_switches: u64,
}

impl TableStats {
    /// Lifetime miss ratio (`misses / lookups`), 0 when nothing was looked
    /// up yet.
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }

    /// Mean sampled probe length in the scheme's own cost unit.
    pub fn mean_probe_len(&self) -> f64 {
        if self.probe_samples == 0 {
            0.0
        } else {
            self.probe_steps as f64 / self.probe_samples as f64
        }
    }

    /// Combine two snapshots (e.g. across shards): counters add, the EWMA
    /// is weighted by each side's lookup volume.
    pub fn merge(&self, other: &TableStats) -> TableStats {
        let lookups = self.lookups + other.lookups;
        let miss_ewma = if lookups == 0 {
            0.0
        } else {
            (self.miss_ewma * self.lookups as f64 + other.miss_ewma * other.lookups as f64)
                / lookups as f64
        };
        TableStats {
            lookups,
            misses: self.misses + other.misses,
            inserts: self.inserts + other.inserts,
            deletes: self.deletes + other.deletes,
            probe_samples: self.probe_samples + other.probe_samples,
            probe_steps: self.probe_steps + other.probe_steps,
            miss_ewma,
            rehashes: self.rehashes + other.rehashes,
            scheme_switches: self.scheme_switches + other.scheme_switches,
        }
    }
}

/// Relaxed-atomic runtime counters, updatable from `&self` on the shared
/// read path (the seqlock optimistic path included — these are plain
/// monotonic counters, not part of any protected snapshot).
///
/// Cost model: a batch lookup pays two `fetch_add`s per *batch*; a
/// single-key lookup pays two per op plus, once per window, one division.
/// Nothing here is sequenced against table contents — `Relaxed` everywhere
/// — so under concurrent readers a window fold can race and drop or
/// double-count a handful of lookups. The signals are statistical inputs
/// to a controller with hysteresis; that imprecision is acceptable by
/// design.
#[derive(Default)]
pub struct RuntimeStats {
    lookups: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    probe_samples: AtomicU64,
    probe_steps: AtomicU64,
    window_lookups: AtomicU64,
    window_misses: AtomicU64,
    /// Q32 fixed-point EWMA of the per-window miss ratio.
    miss_ewma_fp: AtomicU64,
    /// Windows folded so far (0 = EWMA unseeded).
    windows: AtomicU64,
}

impl RuntimeStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifetime lookups observed so far (used by callers to sample every
    /// Nth lookup for probe-length tracing).
    #[inline]
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Record `n` lookups of which `misses` found nothing, folding the
    /// EWMA window when it fills.
    #[inline]
    pub fn record_lookups(&self, n: u64, misses: u64) {
        if n == 0 {
            return;
        }
        self.lookups.fetch_add(n, Ordering::Relaxed);
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
            self.window_misses.fetch_add(misses, Ordering::Relaxed);
        }
        let after = self.window_lookups.fetch_add(n, Ordering::Relaxed) + n;
        if after >= EWMA_WINDOW {
            self.fold_window();
        }
    }

    /// Record a sampled probe of `steps` probe units.
    #[inline]
    pub fn record_probe(&self, steps: u64) {
        self.probe_samples.fetch_add(1, Ordering::Relaxed);
        self.probe_steps.fetch_add(steps, Ordering::Relaxed);
    }

    /// Record `n` insert operations.
    #[inline]
    pub fn record_inserts(&self, n: u64) {
        self.inserts.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` delete operations.
    #[inline]
    pub fn record_deletes(&self, n: u64) {
        self.deletes.fetch_add(n, Ordering::Relaxed);
    }

    #[cold]
    fn fold_window(&self) {
        let lk = self.window_lookups.swap(0, Ordering::Relaxed);
        if lk == 0 {
            return; // another thread folded this window first
        }
        let ms = self.window_misses.swap(0, Ordering::Relaxed).min(lk);
        let ratio_fp = (((ms as u128) << 32) / lk as u128) as u64;
        if self.windows.fetch_add(1, Ordering::Relaxed) == 0 {
            self.miss_ewma_fp.store(ratio_fp, Ordering::Relaxed);
            return;
        }
        let old = self.miss_ewma_fp.load(Ordering::Relaxed);
        let delta = (ratio_fp as i64 - old as i64) >> EWMA_SHIFT;
        let new = (old as i64 + delta).clamp(0, EWMA_FP_ONE as i64) as u64;
        self.miss_ewma_fp.store(new, Ordering::Relaxed);
    }

    /// Snapshot the counters. Before the first window folds, `miss_ewma`
    /// reports the lifetime ratio so early controller decisions are not
    /// anchored to a meaningless zero.
    pub fn snapshot(&self) -> TableStats {
        let lookups = self.lookups.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let miss_ewma = if self.windows.load(Ordering::Relaxed) == 0 {
            if lookups == 0 {
                0.0
            } else {
                misses as f64 / lookups as f64
            }
        } else {
            self.miss_ewma_fp.load(Ordering::Relaxed) as f64 / EWMA_FP_ONE as f64
        };
        TableStats {
            lookups,
            misses,
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            probe_samples: self.probe_samples.load(Ordering::Relaxed),
            probe_steps: self.probe_steps.load(Ordering::Relaxed),
            miss_ewma,
            rehashes: 0,
            scheme_switches: 0,
        }
    }
}

impl std::fmt::Debug for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RuntimeStats({:?})", self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HashTable, EMPTY_KEY, TOMBSTONE_KEY};
    use hashfn::{MultShift, Murmur};

    fn pair(k: u64) -> Pair {
        Pair { key: k, value: 0 }
    }

    #[test]
    fn cluster_stats_empty_table() {
        let slots = vec![Pair::empty(); 8];
        let s = cluster_stats(&slots);
        assert_eq!(s.clusters, 0);
        assert_eq!(s.max_len, 0);
        assert_eq!(s.non_empty, 0);
    }

    #[test]
    fn cluster_stats_counts_runs() {
        // Layout: [K K _ K _ _ T K]: circular run 7,0,1 (len 3), run 3 (1),
        // run 6 is tombstone-connected to 7: positions 6,7 wrap with 0,1.
        let mut slots = vec![Pair::empty(); 8];
        slots[0] = pair(1);
        slots[1] = pair(2);
        slots[3] = pair(3);
        slots[6] = Pair { key: TOMBSTONE_KEY, value: 0 };
        slots[7] = pair(4);
        let s = cluster_stats(&slots);
        // Runs: {6,7,0,1} (tombstone joins) and {3}.
        assert_eq!(s.clusters, 2);
        assert_eq!(s.max_len, 4);
        assert_eq!(s.non_empty, 5);
        assert_eq!(s.tombstones, 1);
        assert!((s.mean_len - 2.5).abs() < 1e-9);
    }

    #[test]
    fn cluster_stats_full_table() {
        let slots = vec![pair(9); 8];
        let s = cluster_stats(&slots);
        assert_eq!(s.clusters, 1);
        assert_eq!(s.max_len, 8);
    }

    #[test]
    fn displacement_zero_for_perfect_placement() {
        let mut t: LinearProbing<MultShift> = LinearProbing::with_hash(8, MultShift::default());
        // Dense keys + Mult: nearly collision-free placement.
        for k in 1..=64u64 {
            t.insert(k, k).unwrap();
        }
        let s = t.displacement_stats();
        assert_eq!(s.entries, 64);
        assert!(s.mean < 0.5, "dense+Mult should be near-perfect, mean {}", s.mean);
    }

    #[test]
    fn lp_and_rh_have_equal_total_displacement() {
        // §2.4: RH does not change total displacement versus LP, only its
        // distribution.
        let h = Murmur::with_seed(7);
        let mut lp = LinearProbing::with_hash(10, h);
        let mut rh = RobinHood::with_hash(10, h);
        let mut x = 1u64;
        for _ in 0..900 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = x >> 4;
            lp.insert(k, 0).unwrap();
            rh.insert(k, 0).unwrap();
        }
        let sl = lp.displacement_stats();
        let sr = rh.displacement_stats();
        assert_eq!(sl.entries, sr.entries);
        assert_eq!(sl.total, sr.total, "RH must preserve total displacement");
        assert!(
            sr.variance <= sl.variance,
            "RH variance {} must not exceed LP variance {}",
            sr.variance,
            sl.variance
        );
        assert!(sr.max <= sl.max, "RH max {} vs LP max {}", sr.max, sl.max);
    }

    #[test]
    fn qp_displacement_counts_probe_steps() {
        let mut t: QuadraticProbing<MultShift> = QuadraticProbing::with_hash(4, MultShift::new(1));
        for k in 1..=4u64 {
            t.insert(k, k).unwrap();
        }
        // Keys at offsets 0, 1, 3, 6 → displacements 0, 1, 2, 3 steps.
        let s = t.displacement_stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.total, 1 + 2 + 3);
        assert_eq!(s.max, 3);
    }

    #[test]
    fn stats_ignore_control_slots() {
        let slots = vec![
            Pair { key: TOMBSTONE_KEY, value: 0 },
            pair(5),
            Pair { key: EMPTY_KEY, value: 0 },
            pair(6),
        ];
        let s = displacement_stats_with(&slots, |_, _| 2);
        assert_eq!(s.entries, 2);
        assert_eq!(s.total, 4);
        assert_eq!(s.max, 2);
        assert!((s.variance - 0.0).abs() < 1e-12);
    }

    #[test]
    fn runtime_stats_counts_and_lifetime_ratio_before_first_window() {
        let rs = RuntimeStats::new();
        rs.record_lookups(10, 3);
        rs.record_inserts(4);
        rs.record_deletes(1);
        rs.record_probe(5);
        rs.record_probe(1);
        let s = rs.snapshot();
        assert_eq!(s.lookups, 10);
        assert_eq!(s.misses, 3);
        assert_eq!(s.inserts, 4);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.probe_samples, 2);
        assert_eq!(s.probe_steps, 6);
        assert!((s.miss_ratio() - 0.3).abs() < 1e-12);
        // No window folded yet: EWMA falls back to the lifetime ratio.
        assert!((s.miss_ewma - 0.3).abs() < 1e-12);
        assert!((s.mean_probe_len() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_seeds_on_first_window_then_tracks_shifts() {
        let rs = RuntimeStats::new();
        // First window: all misses → EWMA seeds at 1.0.
        rs.record_lookups(EWMA_WINDOW, EWMA_WINDOW);
        let s = rs.snapshot();
        assert!((s.miss_ewma - 1.0).abs() < 1e-6, "seeded at {}", s.miss_ewma);
        // Phase shift to all hits: each window moves the EWMA 1/8 of the
        // way to 0. After 32 windows it must be nearly forgotten, while the
        // lifetime ratio still remembers the old phase.
        for _ in 0..32 {
            rs.record_lookups(EWMA_WINDOW, 0);
        }
        let s = rs.snapshot();
        assert!(s.miss_ewma < 0.02, "EWMA should track the new phase, got {}", s.miss_ewma);
        assert!(s.miss_ratio() > 0.02, "lifetime ratio remembers the old phase");
    }

    #[test]
    fn ewma_moves_toward_each_window_ratio() {
        let rs = RuntimeStats::new();
        rs.record_lookups(EWMA_WINDOW, 0); // seed at 0.0
        rs.record_lookups(EWMA_WINDOW, EWMA_WINDOW / 2); // window ratio 0.5
        let s = rs.snapshot();
        // One α=1/8 step from 0.0 toward 0.5.
        assert!((s.miss_ewma - 0.0625).abs() < 1e-3, "got {}", s.miss_ewma);
    }

    #[test]
    fn table_stats_merge_weights_ewma_by_lookups() {
        let a = TableStats { lookups: 300, misses: 30, miss_ewma: 0.1, ..Default::default() };
        let b = TableStats { lookups: 100, misses: 90, miss_ewma: 0.9, ..Default::default() };
        let m = a.merge(&b);
        assert_eq!(m.lookups, 400);
        assert_eq!(m.misses, 120);
        assert!((m.miss_ewma - 0.3).abs() < 1e-12);
        // Merging zero-lookup sides is safe.
        let z = TableStats::default().merge(&TableStats::default());
        assert_eq!(z.miss_ewma, 0.0);
    }
}
