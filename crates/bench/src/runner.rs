//! Scheme × hash-function dispatch and multi-seed measurement.
//!
//! The figure binaries iterate over the paper's table grid; this module
//! turns a `(Scheme, HashId)` pair into a concrete table, drives the WORM
//! or RW workload against it, and averages throughput over the configured
//! seeds (§4.2: three independent runs per data point).

use metrics::{SeedStats, Throughput};
use sevendim_core::{
    ConcurrentTable, DynamicTable, HashKind, HashTable, InsertOutcome, TableBuilder, TableError,
    TableScheme,
};
use workloads::{
    rw::{run_chunk, run_concurrent, RwStream},
    worm::{run_cell, WormKeys},
    Distribution, RwConfig, WormConfig,
};

/// Hashing schemes of the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// ChainedH8 (8-byte directory links).
    Chained8,
    /// ChainedH24 (24-byte inline directory entries).
    Chained24,
    /// Linear probing, AoS.
    LP,
    /// Quadratic (triangular) probing.
    QP,
    /// Robin Hood on LP, tuned.
    RH,
    /// Cuckoo hashing on four sub-tables.
    Cuckoo4,
    /// Bucketized fingerprint probing (16-slot groups, tag array).
    Fingerprint,
}

/// Hash functions presented in the paper's figures (§4.4 narrows the four
/// functions down to these two).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HashId {
    /// Multiply-shift.
    Mult,
    /// Murmur3 64-bit finalizer.
    Murmur,
}

impl Scheme {
    /// The [`TableBuilder`] scheme this grid position maps to.
    pub fn table_scheme(&self) -> TableScheme {
        match self {
            Scheme::Chained8 => TableScheme::Chained8,
            Scheme::Chained24 => TableScheme::Chained24,
            Scheme::LP => TableScheme::LinearProbing,
            Scheme::QP => TableScheme::Quadratic,
            Scheme::RH => TableScheme::RobinHood,
            Scheme::Cuckoo4 => TableScheme::Cuckoo4,
            Scheme::Fingerprint => TableScheme::Fingerprint,
        }
    }

    /// Paper-style label, e.g. `"RHMult"`.
    pub fn label(&self, h: HashId) -> String {
        format!("{}{}", self.table_scheme().name(), h.hash_kind().name())
    }
}

impl HashId {
    /// The [`TableBuilder`] hash family this grid position maps to.
    pub fn hash_kind(&self) -> HashKind {
        match self {
            HashId::Mult => HashKind::Mult,
            HashId::Murmur => HashKind::Murmur,
        }
    }
}

/// Multi-seed WORM result for one cell of a figure.
#[derive(Clone, Debug)]
pub struct WormCellOut {
    /// Insert throughput (M ops/s), `None` if the table could not hold
    /// the keys (e.g. chained hashing beyond its memory budget).
    pub insert_mops: Option<f64>,
    /// Lookup throughput per unsuccessful percentage.
    pub lookup_mops: Vec<(u8, Option<f64>)>,
    /// Memory footprint after the build (bytes, last seed).
    pub memory_bytes: Option<usize>,
    /// Coefficient of variation of insert throughput across seeds (§4.2
    /// variance check).
    pub insert_cv: f64,
}

/// Run a WORM cell against tables produced by `build_table` (seed →
/// table), averaging over `seeds`. The generic entry point behind
/// [`worm_cell`]; figure 7 uses it directly for the AoS/SoA/SIMD variants
/// that sit outside the main scheme grid.
pub fn worm_cell_with<T: HashTable>(
    mut build_table: impl FnMut(u64) -> Result<T, TableError>,
    cfg: &WormConfig,
    seeds: &[u64],
) -> WormCellOut {
    let mut insert = SeedStats::new();
    let mut lookups: Vec<(u8, SeedStats)> = Vec::new();
    let mut memory = None;
    for (i, &seed) in seeds.iter().enumerate() {
        let cfg = WormConfig { seed, ..*cfg };
        let keys = WormKeys::prepare(&cfg);
        let mut table = match build_table(seed ^ 0x7AB1E) {
            Ok(t) => t,
            Err(_) => {
                return WormCellOut {
                    insert_mops: None,
                    lookup_mops: cfg_pcts(&keys),
                    memory_bytes: None,
                    insert_cv: 0.0,
                }
            }
        };
        match run_cell(&mut table, &keys) {
            Ok((build, per_pct)) => {
                insert.push(build.m_ops_per_sec());
                if lookups.is_empty() {
                    lookups = per_pct.iter().map(|(pct, _)| (*pct, SeedStats::new())).collect();
                }
                for ((_, stats), (_, t)) in lookups.iter_mut().zip(per_pct.iter()) {
                    stats.push(t.m_ops_per_sec());
                }
                if i == seeds.len() - 1 {
                    memory = Some(table.memory_bytes());
                }
            }
            Err(_) => {
                // Ran out of budget/capacity mid-build: cell is absent,
                // exactly like the paper's removed chained curves.
                return WormCellOut {
                    insert_mops: None,
                    lookup_mops: cfg_pcts(&keys),
                    memory_bytes: None,
                    insert_cv: 0.0,
                };
            }
        }
    }
    WormCellOut {
        insert_mops: Some(insert.mean()),
        insert_cv: insert.cv(),
        lookup_mops: lookups.into_iter().map(|(pct, s)| (pct, Some(s.mean()))).collect(),
        memory_bytes: memory,
    }
}

fn cfg_pcts(keys: &WormKeys) -> Vec<(u8, Option<f64>)> {
    keys.probe_streams.iter().map(|(pct, _, _)| (*pct, None)).collect()
}

/// Run one WORM cell for a `(scheme, hash)` pair, averaging over `seeds`.
///
/// One [`TableBuilder`] covers the whole grid — chained schemes get the
/// §4.5 memory budget applied (an infeasible budget makes the cell
/// absent, matching the paper's removed chained curves at high load).
/// The fingerprint scheme is built with its SSE2 tag scan: group
/// probing *is* the scheme (the scalar fallback only exists for non-x86
/// targets), whereas the LP layouts stay scalar here because SIMD key
/// scanning is its own dimension (Figure 7).
pub fn worm_cell(scheme: Scheme, h: HashId, cfg: &WormConfig, seeds: &[u64]) -> WormCellOut {
    let mut builder = TableBuilder::new(scheme.table_scheme())
        .hash(h.hash_kind())
        .bits(cfg.capacity_bits)
        .simd(scheme == Scheme::Fingerprint);
    if matches!(scheme, Scheme::Chained8 | Scheme::Chained24) {
        builder = builder.chained_budget(cfg.n_keys());
    }
    worm_cell_with(|s| builder.clone().seed(s).try_build(), cfg, seeds)
}

/// RW result for one cell of Figure 5.
#[derive(Clone, Debug)]
pub struct RwCellOut {
    /// Overall throughput across the stream (M ops/s).
    pub mops: f64,
    /// Final memory footprint (bytes).
    pub memory_bytes: usize,
    /// Growth rehashes performed.
    pub rehashes: usize,
}

/// Run one RW cell (scheme × hash × growth threshold).
///
/// The [`TableBuilder`] doubles as the [`DynamicTable`]'s factory: every
/// growth step re-invokes it with one more capacity bit and a fresh seed.
pub fn rw_cell(
    scheme: Scheme,
    h: HashId,
    grow_threshold: f64,
    cfg: RwConfig,
) -> Result<RwCellOut, TableError> {
    if scheme == Scheme::Chained8 {
        unimplemented!("the paper's RW comparison does not include ChainedH8")
    }
    // Initial size: the paper starts 16 M keys in a 2^25 table ≈ 47% load;
    // generalized: the smallest power of two that keeps the initial load
    // under the growth threshold.
    let mut bits = 10u8;
    while (cfg.initial_keys as f64) > grow_threshold * (1u64 << bits) as f64 {
        bits += 1;
    }
    let factory = TableBuilder::new(scheme.table_scheme())
        .hash(h.hash_kind())
        .simd(scheme == Scheme::Fingerprint);
    let mut stream = RwStream::new(cfg);
    let mut table = DynamicTable::new(factory, bits, cfg.seed ^ 0xD14_7AB1E, grow_threshold);
    for k in stream.initial_keys() {
        table.insert(k, k)?;
    }
    let mut total: Option<Throughput> = None;
    const CHUNK: usize = 1 << 16;
    while let Some(chunk) = stream.next_chunk(CHUNK) {
        let t = run_chunk(&mut table, &chunk)?;
        total = Some(match total {
            None => t,
            Some(acc) => acc.merge(&t),
        });
    }
    Ok(RwCellOut {
        mops: total.map(|t| t.m_ops_per_sec()).unwrap_or(0.0),
        memory_bytes: table.memory_bytes(),
        rehashes: table.rehash_count(),
    })
}

/// One point of a thread-scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Worker threads used.
    pub threads: usize,
    /// Aggregate throughput (M ops/s) across all threads.
    pub mops: f64,
}

/// Shape of a lookup-scaling cell: the table and probe-stream dimensions
/// that stay fixed while `threads` sweeps.
#[derive(Clone, Copy, Debug)]
pub struct LookupScale {
    /// Total capacity exponent (`2^bits` slots across all shards).
    pub bits: u8,
    /// Shard-count exponent, fixed across the sweep.
    pub shard_bits: u8,
    /// Fill fraction before probing.
    pub load: f64,
    /// Total lookups, split across threads.
    pub probes: usize,
    /// Seed for table hashes and key generation.
    pub seed: u64,
    /// Whether readers may take the lock-free seqlock path
    /// ([`TableBuilder::optimistic_reads`]); `false` measures the
    /// mutex-per-shard baseline.
    pub optimistic: bool,
}

/// Build the sharded table of a scaling cell and fill it to `cell.load`
/// with sparse keys (value = `key ^ 0xFF`), returning the table and the
/// inserted keys.
fn build_scale_table(
    scheme: Scheme,
    h: HashId,
    cell: &LookupScale,
) -> (sevendim_core::ShardedTable<sevendim_core::BoxedTable>, Vec<u64>) {
    let mut table = TableBuilder::new(scheme.table_scheme())
        .hash(h.hash_kind())
        .bits(cell.bits)
        .seed(cell.seed)
        .shards(cell.shard_bits)
        .optimistic_reads(cell.optimistic)
        .build_sharded();
    let n_keys = ((1usize << cell.bits) as f64 * cell.load) as usize;
    let keys = Distribution::Sparse.generate(n_keys, cell.seed ^ 0x5CA1E);
    let items: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k ^ 0xFF)).collect();
    let mut outcomes = vec![Ok(InsertOutcome::Inserted); items.len()];
    table.insert_batch(&items, &mut outcomes);
    assert!(outcomes.iter().all(|o| o.is_ok()), "scale cell build failed for {}", scheme.label(h));
    (table, keys)
}

/// Measure successful-lookup throughput of one sharded `(scheme, hash)`
/// cell at `threads` worker threads.
///
/// The table is built once via [`TableBuilder::shards`] at
/// `2^bits` total slots, filled to `load` with sparse keys through the
/// batch API, then `probes` lookups (split across threads, each thread
/// probing a strided permutation of the inserted keys in 4096-key batches
/// through `lookup_batch_shared`) are timed from a barrier; throughput is
/// total probes over the slowest thread's wall clock. Keeping
/// `shard_bits` fixed while sweeping `threads` measures scaling of the
/// *same* table.
pub fn lookup_scale_cell(
    scheme: Scheme,
    h: HashId,
    cell: &LookupScale,
    threads: usize,
) -> ScalePoint {
    let probes = cell.probes;
    let (table, keys) = build_scale_table(scheme, h, cell);
    // Per-thread probe streams, prepared outside the timed region: each
    // thread walks the key set from its own offset with a large co-prime
    // stride, so all probes hit but no two threads share an access
    // pattern.
    let threads = threads.max(1);
    let per_thread = probes / threads;
    // Coordinator-timed parallel region (extra barrier participant): one
    // wall clock across all workers, immune to per-thread scheduling
    // skew on oversubscribed machines.
    let barrier = std::sync::Barrier::new(threads + 1);
    let (total_ops, elapsed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (table, keys, barrier) = (&table, &keys, &barrier);
                scope.spawn(move || {
                    let stride = (2_654_435_761usize % keys.len()) | 1;
                    let mut pos = (t * keys.len()) / threads;
                    let mut probe_keys = vec![0u64; 4096];
                    let mut values = vec![None; 4096];
                    barrier.wait();
                    let mut done = 0usize;
                    while done < per_thread {
                        let batch = probe_keys.len().min(per_thread - done);
                        for slot in probe_keys[..batch].iter_mut() {
                            *slot = keys[pos];
                            pos = (pos + stride) % keys.len();
                        }
                        table.lookup_batch_shared(&probe_keys[..batch], &mut values[..batch]);
                        done += batch;
                    }
                    std::hint::black_box(&values);
                    done as u64
                })
            })
            .collect();
        // Clock starts before the coordinator's barrier entry — workers
        // cannot pass the barrier earlier, so the whole parallel region
        // lies inside [start, join] regardless of scheduling.
        let start = std::time::Instant::now();
        barrier.wait();
        let ops: u64 = handles.into_iter().map(|h| h.join().expect("probe thread panicked")).sum();
        (ops, start.elapsed())
    });
    ScalePoint { threads, mops: Throughput::new(total_ops, elapsed).m_ops_per_sec() }
}

/// Measure *single-key* `lookup_shared` throughput of one sharded cell —
/// the panel that isolates the seqlock read path from batch routing.
///
/// Where [`lookup_scale_cell`] amortizes shard selection and locking over
/// 4096-key batches, this cell pays the per-key synchronization cost on
/// every probe: with `cell.optimistic == false` that is a mutex
/// lock/unlock per lookup (readers of the same shard serialize), with
/// `true` it is two atomic loads of the shard's generation counter and no
/// store at all — the contrast between the two runs is the direct
/// measurement of what lock-free reads buy.
pub fn readonly_scale_cell(
    scheme: Scheme,
    h: HashId,
    cell: &LookupScale,
    threads: usize,
) -> ScalePoint {
    let probes = cell.probes;
    let (table, keys) = build_scale_table(scheme, h, cell);
    let threads = threads.max(1);
    let per_thread = probes / threads;
    let barrier = std::sync::Barrier::new(threads + 1);
    let (total_ops, elapsed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (table, keys, barrier) = (&table, &keys, &barrier);
                scope.spawn(move || {
                    let stride = (2_654_435_761usize % keys.len()) | 1;
                    let mut pos = (t * keys.len()) / threads;
                    barrier.wait();
                    let mut hits = 0u64;
                    for _ in 0..per_thread {
                        let key = keys[pos];
                        pos = (pos + stride) % keys.len();
                        if table.lookup_shared(key).is_some() {
                            hits += 1;
                        }
                    }
                    assert_eq!(hits, per_thread as u64, "read-only probes must all hit");
                    per_thread as u64
                })
            })
            .collect();
        let start = std::time::Instant::now();
        barrier.wait();
        let ops: u64 = handles.into_iter().map(|h| h.join().expect("probe thread panicked")).sum();
        (ops, start.elapsed())
    });
    ScalePoint { threads, mops: Throughput::new(total_ops, elapsed).m_ops_per_sec() }
}

/// Measure RW-mix throughput of one sharded `(scheme, hash)` cell at
/// `threads` worker threads: per-shard growing tables driven by
/// [`run_concurrent`] over disjoint per-thread key regions.
pub fn rw_scale_cell(
    scheme: Scheme,
    h: HashId,
    shard_bits: u8,
    grow_threshold: f64,
    cfg: RwConfig,
    threads: usize,
) -> Result<ScalePoint, TableError> {
    // Initial bits: hold the initial keys under the threshold (same rule
    // as `rw_cell`), then split across shards.
    let mut bits = 10u8.max(shard_bits + 2);
    while (cfg.initial_keys as f64) > grow_threshold * (1u64 << bits) as f64 {
        bits += 1;
    }
    let table = TableBuilder::new(scheme.table_scheme())
        .hash(h.hash_kind())
        .bits(bits)
        .seed(cfg.seed ^ 0xD14_7AB1E)
        .shards(shard_bits)
        .grow_at(grow_threshold)
        .build_sharded();
    let t = run_concurrent(&table, &cfg, threads)?;
    Ok(ScalePoint { threads, mops: t.m_ops_per_sec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> WormConfig {
        WormConfig {
            capacity_bits: 10,
            load_factor: 0.5,
            dist: Distribution::Sparse,
            probes: 2000,
            seed: 0,
        }
    }

    #[test]
    fn worm_cell_produces_all_pcts() {
        let out = worm_cell(Scheme::LP, HashId::Mult, &tiny_cfg(), &[1, 2]);
        assert!(out.insert_mops.unwrap() > 0.0);
        assert_eq!(out.lookup_mops.len(), 5);
        assert!(out.lookup_mops.iter().all(|(_, v)| v.unwrap() > 0.0));
        assert_eq!(out.memory_bytes, Some(1024 * 16));
    }

    #[test]
    fn chained_cell_absent_at_high_load() {
        let cfg = WormConfig { load_factor: 0.9, ..tiny_cfg() };
        let out = worm_cell(Scheme::Chained24, HashId::Mult, &cfg, &[1]);
        assert!(out.insert_mops.is_none(), "chained must not fit 90% load");
        assert!(out.lookup_mops.iter().all(|(_, v)| v.is_none()));
    }

    #[test]
    fn all_pairs_run_at_fifty_percent() {
        for scheme in [
            Scheme::Chained8,
            Scheme::Chained24,
            Scheme::LP,
            Scheme::QP,
            Scheme::RH,
            Scheme::Cuckoo4,
            Scheme::Fingerprint,
        ] {
            for h in [HashId::Mult, HashId::Murmur] {
                let out = worm_cell(scheme, h, &tiny_cfg(), &[3]);
                assert!(out.insert_mops.is_some(), "{} failed at 50% load", scheme.label(h));
            }
        }
    }

    #[test]
    fn rw_cell_runs_all_schemes() {
        let cfg = RwConfig { initial_keys: 2000, operations: 20_000, update_pct: 50, seed: 1 };
        for scheme in [
            Scheme::LP,
            Scheme::QP,
            Scheme::RH,
            Scheme::Cuckoo4,
            Scheme::Chained24,
            Scheme::Fingerprint,
        ] {
            let out = rw_cell(scheme, HashId::Mult, 0.7, cfg).unwrap();
            assert!(out.mops > 0.0, "{:?}", scheme);
            assert!(out.memory_bytes > 0);
        }
    }

    #[test]
    fn lookup_scale_cell_reports_positive_throughput() {
        let cell = LookupScale {
            bits: 12,
            shard_bits: 2,
            load: 0.5,
            probes: 20_000,
            seed: 3,
            optimistic: true,
        };
        for threads in [1, 2] {
            let p = lookup_scale_cell(Scheme::LP, HashId::Mult, &cell, threads);
            assert_eq!(p.threads, threads);
            assert!(p.mops > 0.0);
        }
    }

    #[test]
    fn readonly_scale_cell_runs_both_read_paths() {
        for optimistic in [true, false] {
            let cell = LookupScale {
                bits: 12,
                shard_bits: 2,
                load: 0.5,
                probes: 20_000,
                seed: 3,
                optimistic,
            };
            let p = readonly_scale_cell(Scheme::LP, HashId::Mult, &cell, 2);
            assert_eq!(p.threads, 2);
            assert!(p.mops > 0.0, "optimistic={optimistic}");
        }
    }

    #[test]
    fn rw_scale_cell_runs_sharded_growing_tables() {
        let cfg = RwConfig { initial_keys: 2000, operations: 20_000, update_pct: 50, seed: 2 };
        let p = rw_scale_cell(Scheme::RH, HashId::Mult, 2, 0.7, cfg, 2).unwrap();
        assert_eq!(p.threads, 2);
        assert!(p.mops > 0.0);
    }

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(Scheme::Chained24.label(HashId::Murmur), "ChainedH24Murmur");
        assert_eq!(Scheme::Cuckoo4.label(HashId::Mult), "CuckooH4Mult");
        assert_eq!(Scheme::Fingerprint.label(HashId::Mult), "FPMult");
    }
}
