//! Scale configuration and a dependency-free argument parser for the
//! figure binaries.
//!
//! The paper's capacities are 2^16 (small, 1 MB), 2^27 (medium, 2 GB) and
//! 2^30 (large, 16 GB), with 100 M-scale probe streams and 1000 M-op RW
//! runs on a 192 GB server. The `default` scale reproduces the *shape* of
//! every figure within laptop budgets; `paper` uses the original sizes
//! (bring RAM and patience); `smoke` exists for CI. Every knob can be
//! overridden individually (`--log2-capacity`, `--probes`, `--ops`,
//! `--seeds`) or via `SEVENDIM_LOG2_{SMALL,MEDIUM,LARGE}`.

/// Preset experiment sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long sanity run (CI).
    Smoke,
    /// Laptop-sized reproduction of every figure's shape.
    Default,
    /// The paper's original sizes (2^30 large tables, 16 GB+ RAM).
    Paper,
}

impl Scale {
    fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Capacity exponents `(small, medium, large)`.
    pub fn capacity_bits(&self) -> (u8, u8, u8) {
        let base = match self {
            Scale::Smoke => (12, 14, 16),
            Scale::Default => (16, 19, 22),
            Scale::Paper => (16, 27, 30),
        };
        (
            env_override("SEVENDIM_LOG2_SMALL", base.0),
            env_override("SEVENDIM_LOG2_MEDIUM", base.1),
            env_override("SEVENDIM_LOG2_LARGE", base.2),
        )
    }

    /// Lookups per probe stream.
    pub fn probes(&self) -> usize {
        match self {
            Scale::Smoke => 20_000,
            Scale::Default => 400_000,
            Scale::Paper => 100_000_000,
        }
    }

    /// Operations in an RW stream.
    pub fn rw_operations(&self) -> usize {
        match self {
            Scale::Smoke => 100_000,
            Scale::Default => 4_000_000,
            Scale::Paper => 1_000_000_000,
        }
    }

    /// Initial keys before an RW stream (paper: 16 M ≈ 47% load).
    pub fn rw_initial_keys(&self) -> usize {
        match self {
            Scale::Smoke => 10_000,
            Scale::Default => 500_000,
            Scale::Paper => 16_000_000,
        }
    }

    /// Independent seeded repetitions per data point (paper: 3).
    pub fn seeds(&self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Default => 2,
            Scale::Paper => 3,
        }
    }
}

fn env_override(name: &str, default: u8) -> u8 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Parsed command line of a figure binary.
#[derive(Clone, Debug)]
pub struct Args {
    /// Preset scale.
    pub scale: Scale,
    /// Override: capacity exponent used by single-capacity figures.
    pub log2_capacity: Option<u8>,
    /// Override: probe-stream length.
    pub probes: Option<usize>,
    /// Override: RW operation count.
    pub ops: Option<usize>,
    /// Override: number of seeds.
    pub seeds: Option<usize>,
    /// Override: maximum worker threads for the scaling binaries.
    pub threads: Option<usize>,
    /// Also print CSV blocks after the text tables.
    pub csv: bool,
}

impl Args {
    /// Effective seeds list (0-based seeds mixed into workload seeds).
    pub fn seed_list(&self) -> Vec<u64> {
        let n = self.seeds.unwrap_or_else(|| self.scale.seeds());
        (0..n as u64).map(|i| 0xBA5E_u64 + 7919 * i).collect()
    }

    /// Effective probe count.
    pub fn probe_count(&self) -> usize {
        self.probes.unwrap_or_else(|| self.scale.probes())
    }

    /// Effective RW op count.
    pub fn op_count(&self) -> usize {
        self.ops.unwrap_or_else(|| self.scale.rw_operations())
    }

    /// Maximum worker threads: `--threads` if given, else the machine's
    /// parallelism capped at 8 (2 under `--scale smoke` — CI runners are
    /// small and the smoke run only needs to *exercise* the parallel
    /// path).
    pub fn max_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| {
                let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
                match self.scale {
                    Scale::Smoke => avail.min(2),
                    _ => avail.min(8),
                }
            })
            .max(1)
    }

    /// Thread counts for a scaling sweep: powers of two up to
    /// [`Args::max_threads`], plus the maximum itself if it is not a
    /// power of two.
    pub fn thread_sweep(&self) -> Vec<usize> {
        let max = self.max_threads();
        let mut sweep: Vec<usize> =
            std::iter::successors(Some(1usize), |&t| (t * 2 <= max).then_some(t * 2)).collect();
        if *sweep.last().expect("sweep starts at 1") != max {
            sweep.push(max);
        }
        sweep
    }
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: Scale::Default,
            log2_capacity: None,
            probes: None,
            ops: None,
            seeds: None,
            threads: None,
            csv: false,
        }
    }
}

/// Parse `std::env::args`-style arguments. Unknown flags abort with a
/// usage message (better to fail than to silently mis-measure).
pub fn parse_args(argv: impl IntoIterator<Item = String>) -> Args {
    let mut args = Args::default();
    let mut it = argv.into_iter();
    let _bin = it.next();
    while let Some(flag) = it.next() {
        let mut value_for =
            |flag: &str| it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--scale" => {
                let v = value_for("--scale");
                args.scale =
                    Scale::parse(&v).unwrap_or_else(|| usage(&format!("unknown scale '{v}'")));
            }
            "--log2-capacity" => {
                args.log2_capacity = Some(
                    value_for("--log2-capacity")
                        .parse()
                        .unwrap_or_else(|_| usage("--log2-capacity must be an integer")),
                )
            }
            "--probes" => {
                args.probes = Some(
                    value_for("--probes")
                        .parse()
                        .unwrap_or_else(|_| usage("--probes must be an integer")),
                )
            }
            "--ops" => {
                args.ops = Some(
                    value_for("--ops")
                        .parse()
                        .unwrap_or_else(|_| usage("--ops must be an integer")),
                )
            }
            "--seeds" => {
                args.seeds = Some(
                    value_for("--seeds")
                        .parse()
                        .unwrap_or_else(|_| usage("--seeds must be an integer")),
                )
            }
            "--threads" => {
                args.threads = Some(
                    value_for("--threads")
                        .parse()
                        .unwrap_or_else(|_| usage("--threads must be an integer")),
                )
            }
            "--csv" => args.csv = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <fig-binary> [--scale smoke|default|paper] [--log2-capacity N] \
         [--probes N] [--ops N] [--seeds N] [--threads N] [--csv]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        std::iter::once("bin".to_string()).chain(s.iter().map(|s| s.to_string())).collect()
    }

    #[test]
    fn defaults() {
        let a = parse_args(argv(&[]));
        assert_eq!(a.scale, Scale::Default);
        assert!(!a.csv);
        assert_eq!(a.seed_list().len(), Scale::Default.seeds());
    }

    #[test]
    fn parses_all_flags() {
        let a = parse_args(argv(&[
            "--scale",
            "smoke",
            "--log2-capacity",
            "18",
            "--probes",
            "1000",
            "--ops",
            "5000",
            "--seeds",
            "4",
            "--threads",
            "6",
            "--csv",
        ]));
        assert_eq!(a.scale, Scale::Smoke);
        assert_eq!(a.log2_capacity, Some(18));
        assert_eq!(a.probe_count(), 1000);
        assert_eq!(a.op_count(), 5000);
        assert_eq!(a.seed_list().len(), 4);
        assert_eq!(a.max_threads(), 6);
        assert!(a.csv);
    }

    #[test]
    fn thread_sweep_covers_powers_of_two_up_to_max() {
        let a = parse_args(argv(&["--threads", "8"]));
        assert_eq!(a.thread_sweep(), vec![1, 2, 4, 8]);
        let a = parse_args(argv(&["--threads", "6"]));
        assert_eq!(a.thread_sweep(), vec![1, 2, 4, 6]);
        let a = parse_args(argv(&["--threads", "1"]));
        assert_eq!(a.thread_sweep(), vec![1]);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Smoke.probes() < Scale::Default.probes());
        assert!(Scale::Default.probes() < Scale::Paper.probes());
        let (s, m, l) = Scale::Default.capacity_bits();
        assert!(s < m && m < l);
    }

    #[test]
    fn seed_lists_are_distinct() {
        let a = parse_args(argv(&["--seeds", "3"]));
        let seeds = a.seed_list();
        assert_eq!(seeds.len(), 3);
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
    }
}
