//! Figure 2: WORM at low load factors (25%, 35%, 45%), large capacity.
//!
//! Compares the two chained-hashing variants against linear probing,
//! under dense/grid/sparse keys, with Mult and Murmur. One insertion
//! panel per distribution (x = load factor) and one lookup panel per
//! distribution × load factor (x = unsuccessful-query percentage) —
//! the exact grid of the paper's Figure 2.

use bench::{emit, parse_args, worm_cell, HashId, Scheme};
use metrics::{ReportTable, Series};
use workloads::{Distribution, WormConfig};

const LOAD_FACTORS: [f64; 3] = [0.25, 0.35, 0.45];
const TABLES: [(Scheme, HashId); 6] = [
    (Scheme::Chained8, HashId::Mult),
    (Scheme::Chained8, HashId::Murmur),
    (Scheme::Chained24, HashId::Mult),
    (Scheme::Chained24, HashId::Murmur),
    (Scheme::LP, HashId::Mult),
    (Scheme::LP, HashId::Murmur),
];

fn main() {
    let args = parse_args(std::env::args());
    let (_, _, large) = args.scale.capacity_bits();
    let bits = args.log2_capacity.unwrap_or(large);
    let seeds = args.seed_list();
    println!(
        "Figure 2 — WORM, low load factors, capacity 2^{bits} \
         ({} probes/stream, {} seed(s))\n",
        args.probe_count(),
        seeds.len()
    );

    for dist in Distribution::ALL {
        // One WormCellOut per (table, load factor).
        let cells: Vec<Vec<_>> = TABLES
            .iter()
            .map(|&(scheme, h)| {
                LOAD_FACTORS
                    .iter()
                    .map(|&lf| {
                        let cfg = WormConfig {
                            capacity_bits: bits,
                            load_factor: lf,
                            dist,
                            probes: args.probe_count(),
                            seed: 0,
                        };
                        worm_cell(scheme, h, &cfg, &seeds)
                    })
                    .collect()
            })
            .collect();

        // Insertions panel: x = load factor.
        let mut panel = ReportTable::new(
            format!("Fig 2 — {} distribution — insertions", dist.name()),
            "load factor %",
            LOAD_FACTORS.iter().map(|lf| format!("{:.0}", lf * 100.0)).collect(),
            "M inserts/s",
        );
        for (t, &(scheme, h)) in TABLES.iter().enumerate() {
            panel.push(Series::new(
                scheme.label(h),
                cells[t].iter().map(|c| c.insert_mops).collect(),
            ));
        }
        emit(&panel, args.csv);

        // Lookup panels: one per load factor, x = unsuccessful %.
        for (li, &lf) in LOAD_FACTORS.iter().enumerate() {
            let mut panel = ReportTable::new(
                format!(
                    "Fig 2 — {} distribution — lookups at {:.0}% load factor",
                    dist.name(),
                    lf * 100.0
                ),
                "unsuccessful %",
                cells[0][li].lookup_mops.iter().map(|(p, _)| p.to_string()).collect(),
                "M lookups/s",
            );
            for (t, &(scheme, h)) in TABLES.iter().enumerate() {
                panel.push(Series::new(
                    scheme.label(h),
                    cells[t][li].lookup_mops.iter().map(|&(_, v)| v).collect(),
                ));
            }
            emit(&panel, args.csv);
        }
    }
}
