//! Durability costs and recovery speed: what the WAL charges, what
//! group commit refunds, and what snapshots *don't* stall.
//!
//! ```text
//! cargo run --release -p bench --bin recovery_tail -- --scale smoke
//! ```
//!
//! Three panels over a sharded LP×Mult table wrapped in
//! [`DurableTable`] (real files under a throwaway temp directory):
//!
//! * **logged vs unlogged throughput** — the same PUT stream through
//!   the bare table, then logged under [`FsyncPolicy::Never`],
//!   `EveryN(64)`, and `Always`, single-op and group-committed
//!   (64-op batches = 64 ops per record per fsync). The spread is the
//!   whole durability trade: `Always`+singles pays one `fsync(2)` per
//!   op; group commit divides that by the batch size at identical
//!   guarantees for the acknowledged batch.
//! * **snapshot overlap** — steady-state insert latency (p50/p99)
//!   versus inserts racing an in-flight snapshot of a preloaded table.
//!   Snapshots scan shard-at-a-time via `for_each_shared` and never
//!   stop the world: the during-snapshot p99 must sit in the same
//!   order of magnitude as steady state, and the bench prints both so
//!   the claim is a number, not an adjective.
//! * **recovery** — reopen the logged directory and time the replay:
//!   `recovered: replayed N ops in T ms` (the line CI greps), plus
//!   replay throughput, which bounds restart time per gigabyte of log.
//!
//! Latencies use [`metrics::LatencyHistogram`] (log-linear, ≤ 12.5%
//! error). `--ops` overrides the logged-op count; fsync-heavy rows are
//! the budget, so the default scales are modest.

use bench::{parse_args, Scale};
use metrics::LatencyHistogram;
use sevendim_core::{ConcurrentTable, FsyncPolicy, TableBuilder, TableScheme};
use sevendim_durable::DurableTable;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// PUTs per throughput row (fsync-bound rows make this the budget).
fn logged_ops(scale: Scale, flag: Option<usize>) -> usize {
    flag.unwrap_or(match scale {
        Scale::Smoke => 4_000,
        Scale::Default => 40_000,
        Scale::Paper => 400_000,
    })
}

/// Entries preloaded before the snapshot-overlap panel (the snapshot
/// must take long enough to overlap a measurable insert stream).
fn preload_keys(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 40_000,
        Scale::Default => 400_000,
        Scale::Paper => 2_000_000,
    }
}

fn builder(dir: Option<&Path>) -> TableBuilder {
    let b = TableBuilder::new(TableScheme::LinearProbing)
        .bits(16)
        .shards(3)
        .grow_at(0.7)
        .incremental(32)
        .seed(0xD1_5C);
    match dir {
        Some(d) => b.wal(d),
        None => b,
    }
}

fn mops(ops: usize, secs: f64) -> f64 {
    ops as f64 / secs / 1e6
}

fn put_stream(table: &dyn ConcurrentTable, ops: usize) -> f64 {
    let start = Instant::now();
    for i in 0..ops as u64 {
        table.insert_shared(i * 2 + 2, i).expect("insert");
    }
    start.elapsed().as_secs_f64()
}

fn put_stream_batched(table: &dyn ConcurrentTable, ops: usize, batch: usize) -> f64 {
    let mut out = vec![Ok(sevendim_core::InsertOutcome::Inserted); batch];
    let start = Instant::now();
    let mut i = 0u64;
    while (i as usize) < ops {
        let n = batch.min(ops - i as usize);
        let items: Vec<(u64, u64)> = (0..n as u64).map(|j| ((i + j) * 2 + 2, i + j)).collect();
        table.insert_batch_shared(&items, &mut out[..n]);
        i += n as u64;
    }
    start.elapsed().as_secs_f64()
}

/// One logged throughput row: fresh WAL dir, `ops` PUTs, report M ops/s
/// and the fsyncs the policy actually issued (from the file counters).
fn logged_row(dir: &Path, policy: FsyncPolicy, ops: usize, batch: Option<usize>) -> (f64, u64) {
    std::fs::remove_dir_all(dir).ok();
    let b = builder(Some(dir)).fsync_policy(policy);
    let (table, _) = DurableTable::open(&b).expect("open logged table");
    let secs = match batch {
        Some(n) => put_stream_batched(&table, ops, n),
        None => put_stream(&table, ops),
    };
    let records = table.records_logged();
    drop(table);
    (secs, records)
}

fn fmt_us(nanos: u64) -> String {
    format!("{:.1}", nanos as f64 / 1e3)
}

fn main() {
    let args = parse_args(std::env::args());
    let ops = logged_ops(args.scale, args.ops);
    let base = std::env::temp_dir().join(format!("sevendim-recovery-tail-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    println!("recovery_tail — {} logged PUTs/row, WAL under {}\n", ops, base.display());

    // Panel 1: logged vs unlogged throughput across fsync policies.
    println!("{:<24} {:>9} {:>9} {:>10}", "write path", "M ops/s", "records", "vs bare");
    let bare = builder(None).build_sharded();
    let bare_secs = put_stream(&bare, ops);
    let bare_mops = mops(ops, bare_secs);
    println!("{:<24} {:>9.3} {:>9} {:>10}", "unlogged", bare_mops, "-", "1.00x");
    let rows: [(&str, FsyncPolicy, Option<usize>); 4] = [
        ("wal Never", FsyncPolicy::Never, None),
        ("wal EveryN(64)", FsyncPolicy::EveryN(64), None),
        ("wal Always", FsyncPolicy::Always, None),
        ("wal Always, batch 64", FsyncPolicy::Always, Some(64)),
    ];
    let log_dir: PathBuf = base.join("throughput");
    for (name, policy, batch) in rows {
        let (secs, records) = logged_row(&log_dir, policy, ops, batch);
        let m = mops(ops, secs);
        println!(
            "{:<24} {:>9.3} {:>9} {:>9.2}x",
            name,
            m,
            records,
            if bare_mops > 0.0 { m / bare_mops } else { 0.0 }
        );
    }

    // Panel 2: inserts racing an in-flight snapshot. Preload, measure a
    // steady-state window, then snapshot on another thread and measure
    // the window that overlaps it.
    let snap_dir = base.join("snapshot");
    let b = builder(Some(&snap_dir)).fsync_policy(FsyncPolicy::Never);
    let (table, _) = DurableTable::open(&b).expect("open snapshot table");
    let table = Arc::new(table);
    let preload = preload_keys(args.scale);
    for i in 0..preload as u64 {
        table.insert_shared(i * 2 + 2, i).expect("preload");
    }
    let mut steady = LatencyHistogram::new();
    let mut k = (preload as u64) * 2 + 2;
    for _ in 0..ops {
        let t = Instant::now();
        table.insert_shared(k, k).expect("steady insert");
        steady.record(t.elapsed().as_nanos() as u64);
        k += 2;
    }
    let during = {
        let snapping = Arc::new(AtomicBool::new(true));
        let snap_table = Arc::clone(&table);
        let snap_flag = Arc::clone(&snapping);
        let snapper = std::thread::spawn(move || {
            let stats = snap_table.snapshot_now().expect("snapshot");
            snap_flag.store(false, Ordering::Release);
            stats
        });
        let mut during = LatencyHistogram::new();
        // Keep inserting for as long as the snapshot runs (with a floor
        // so the histogram is never starved on a fast snapshot).
        let mut n = 0u64;
        while snapping.load(Ordering::Acquire) || n < 1_000 {
            let t = Instant::now();
            table.insert_shared(k, k).expect("during-snapshot insert");
            during.record(t.elapsed().as_nanos() as u64);
            k += 2;
            n += 1;
        }
        let stats = snapper.join().expect("snapshot thread");
        println!(
            "\nsnapshot overlap — {} entries snapshotted while {} inserts proceeded:",
            stats.entries, n
        );
        during
    };
    println!("{:<18} {:>9} {:>9} {:>9}", "insert window", "p50 us", "p99 us", "max us");
    for (name, h) in [("steady state", &steady), ("during snapshot", &during)] {
        println!(
            "{:<18} {:>9} {:>9} {:>9}",
            name,
            fmt_us(h.p50()),
            fmt_us(h.p99()),
            fmt_us(h.max_nanos())
        );
    }
    let ratio = during.p99() as f64 / steady.p99().max(1) as f64;
    println!(
        "during-snapshot p99 is {ratio:.1}x steady state (same order of magnitude = \
         snapshots don't stop the world)"
    );
    let total_live = table.len_shared();
    drop(table);

    // Panel 3: recovery — reopen the snapshot directory (snapshot +
    // post-snapshot log tail) and time the replay.
    let t = Instant::now();
    let (recovered, report) = DurableTable::open(&b).expect("reopen");
    let took = t.elapsed();
    assert!(report.clean(), "recovery hit damage: {:?}", report.tail_error);
    assert_eq!(recovered.len_shared(), total_live, "recovered state matches the live table");
    println!(
        "\nrecovered: replayed {} ops in {:.1} ms ({} snapshot entries, {:.2} M ops/s replay)",
        report.replayed_ops,
        took.as_secs_f64() * 1e3,
        report.snapshot_entries,
        mops(report.replayed_ops as usize, took.as_secs_f64().max(1e-9)),
    );
    drop(recovered);

    std::fs::remove_dir_all(&base).ok();
}
