//! Ablation: what bucketized fingerprint probing buys over key scanning.
//!
//! Two panels:
//!
//! 1. **tag-scan vs key-scan** — lookup throughput of the fingerprint
//!    table (scalar and SSE2 tag groups) against linear probing (the
//!    scalar key scan the paper starts from) and LPSoA with AVX2 key
//!    scanning (the paper's best §7 variant), across load factors and
//!    unsuccessful-lookup percentages. The gap should widen with both:
//!    a miss costs FP one tag line per probed group and usually zero key
//!    lines, while every key-scanning scheme drags whole clusters of key
//!    cache lines through the hierarchy.
//! 2. **group-size sweep** — the same fingerprint layout at 4/8/16/32
//!    slots per group, showing why 16 (one SSE2 register, one quarter of
//!    a cache line of tags) is the sweet spot: smaller groups terminate
//!    probes later (more groups touched), a 32-slot group scans scalar
//!    and reads twice the tags per step.
//!
//! Run at `--scale default` or larger for out-of-cache tables; `--scale
//! smoke` (CI) only exercises the code paths.

use bench::{parse_args, worm_cell_with, WormCellOut};
use hashfn::MultShift;
use sevendim_core::{FingerprintTable, LinearProbing, LinearProbingSoA, TableError};
use workloads::{Distribution, WormConfig};

/// Flatten a cell's lookup panel (open addressing never refuses a build,
/// so every percentage has a number).
fn lookups(out: &WormCellOut) -> Vec<(u8, f64)> {
    out.lookup_mops
        .iter()
        .map(|&(pct, v)| (pct, v.expect("open addressing cannot refuse")))
        .collect()
}

fn main() {
    let args = parse_args(std::env::args());
    let (_, _, large) = args.scale.capacity_bits();
    let bits = args.log2_capacity.unwrap_or(large);
    let seeds = args.seed_list();
    println!(
        "Fingerprint (bucketized tag) ablation — capacity 2^{bits}, sparse keys, \
         {} probes/stream\n",
        args.probe_count()
    );

    // Panel 1: tag-scan vs key-scan across load factors and miss rates.
    println!(
        "{:<5} {:<7} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "lf%", "miss%", "LPMult", "LPSoASIMD", "FPMult", "FPSIMD", "FPSIMD/LP"
    );
    for &lf in &[0.5, 0.7, 0.875] {
        let cfg = WormConfig {
            capacity_bits: bits,
            load_factor: lf,
            dist: Distribution::Sparse,
            probes: args.probe_count(),
            seed: 0,
        };
        let lp = worm_cell_with(
            |s| Ok::<_, TableError>(LinearProbing::<MultShift>::with_seed(bits, s)),
            &cfg,
            &seeds,
        );
        let soa_simd = worm_cell_with(
            |s| Ok::<_, TableError>(LinearProbingSoA::<MultShift>::with_seed_simd(bits, s)),
            &cfg,
            &seeds,
        );
        let fp = worm_cell_with(
            |s| Ok::<_, TableError>(FingerprintTable::<MultShift>::with_seed(bits, s)),
            &cfg,
            &seeds,
        );
        let fp_simd = worm_cell_with(
            |s| Ok::<_, TableError>(FingerprintTable::<MultShift>::with_seed_simd(bits, s)),
            &cfg,
            &seeds,
        );
        let (lp, soa_simd) = (lookups(&lp), lookups(&soa_simd));
        let (fp, fp_simd) = (lookups(&fp), lookups(&fp_simd));
        for i in 0..lp.len() {
            println!(
                "{:<5.0} {:<7} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>11.2}x",
                lf * 100.0,
                lp[i].0,
                lp[i].1,
                soa_simd[i].1,
                fp[i].1,
                fp_simd[i].1,
                fp_simd[i].1 / lp[i].1
            );
        }
    }
    println!(
        "\nExpected pattern: FPSIMD ≈ LP on all-successful probes at low load (both \
         resolve in one group / short cluster), FP pulls ahead as load factor and miss \
         rate grow — a miss is rejected from the tag line without touching keys."
    );

    // Panel 2: group-size sweep at 70% load, all-miss and all-hit streams.
    println!("\ngroup-size sweep — load factor 70%:");
    println!("{:<22} {:>12} {:>12}", "variant", "0% miss", "100% miss");
    let cfg = WormConfig {
        capacity_bits: bits,
        load_factor: 0.7,
        dist: Distribution::Sparse,
        probes: args.probe_count(),
        seed: 1,
    };
    fn sweep_row(name: &str, out: &WormCellOut) {
        let hit = out.lookup_mops.first().and_then(|&(_, v)| v).unwrap_or(0.0);
        let miss = out.lookup_mops.last().and_then(|&(_, v)| v).unwrap_or(0.0);
        println!("{name:<22} {hit:>12.2} {miss:>12.2}");
    }
    let g4 = worm_cell_with(
        |s| Ok::<_, TableError>(FingerprintTable::<MultShift, 4>::with_seed(bits, s)),
        &cfg,
        &seeds,
    );
    sweep_row("FP G=4  (scalar)", &g4);
    let g8 = worm_cell_with(
        |s| Ok::<_, TableError>(FingerprintTable::<MultShift, 8>::with_seed(bits, s)),
        &cfg,
        &seeds,
    );
    sweep_row("FP G=8  (scalar)", &g8);
    let g16 = worm_cell_with(
        |s| Ok::<_, TableError>(FingerprintTable::<MultShift, 16>::with_seed(bits, s)),
        &cfg,
        &seeds,
    );
    sweep_row("FP G=16 (scalar)", &g16);
    let g16v = worm_cell_with(
        |s| Ok::<_, TableError>(FingerprintTable::<MultShift, 16>::with_seed_simd(bits, s)),
        &cfg,
        &seeds,
    );
    sweep_row("FP G=16 (SSE2)", &g16v);
    let g32 = worm_cell_with(
        |s| Ok::<_, TableError>(FingerprintTable::<MultShift, 32>::with_seed(bits, s)),
        &cfg,
        &seeds,
    );
    sweep_row("FP G=32 (scalar)", &g32);
    println!(
        "\n(16 slots = one SSE2 compare and a quarter cache line of tags; smaller \
         groups probe more often, 32-slot groups scan scalar and double the tag \
         traffic per step.)"
    );
}
