//! Ablation: Cuckoo hashing on 2, 3 and 4 sub-tables (§2.5).
//!
//! The classic thresholds: two tables destabilize just under 50% load,
//! three reach ≈88%, four ≈97% (Fotakis et al.) — the reason the paper
//! evaluates CuckooH4. This binary fills each variant until the first
//! insertion failure (bounded rehash attempts) and reports the achieved
//! load factor, then compares lookup throughput at a load all three can
//! sustain (45%).

use bench::parse_args;
use hashfn::Murmur;
use metrics::Throughput;
use sevendim_core::{Cuckoo, HashTable};
use workloads::{Distribution, WormConfig, WormKeys};

fn fill_until_failure<const K: usize>(bits: u8, seed: u64) -> f64 {
    let mut t: Cuckoo<Murmur, K> = Cuckoo::with_seed(bits, seed);
    t.set_max_rehash_attempts(4);
    let keys = Distribution::Sparse.generate(1 << bits, seed);
    let mut placed = 0usize;
    for &k in &keys {
        if t.insert(k, k).is_err() {
            break;
        }
        placed += 1;
    }
    placed as f64 / t.capacity() as f64
}

fn main() {
    let args = parse_args(std::env::args());
    let (small, medium, _) = args.scale.capacity_bits();
    let bits = args.log2_capacity.unwrap_or(medium).min(20); // fill-to-failure rehashes a lot
    let seeds = args.seed_list();

    println!("Cuckoo sub-table ablation — capacity 2^{bits}\n");
    println!("{:<10} {:>22}", "variant", "max load before fail");
    for (k, name) in [(2usize, "CuckooH2"), (3, "CuckooH3"), (4, "CuckooH4")] {
        let mut acc = 0.0;
        for &s in &seeds {
            acc += match k {
                2 => fill_until_failure::<2>(bits.min(small + 4), s),
                3 => fill_until_failure::<3>(bits.min(small + 4), s),
                _ => fill_until_failure::<4>(bits.min(small + 4), s),
            };
        }
        println!("{name:<10} {:>21.1}%", acc / seeds.len() as f64 * 100.0);
    }

    println!("\nLookup throughput at 45% load (all variants stable):");
    println!("{:<10} {:>14} {:>16}", "variant", "M lookups/s", "probes/lookup ≤");
    let cfg = WormConfig {
        capacity_bits: bits,
        load_factor: 0.45,
        dist: Distribution::Sparse,
        probes: args.probe_count(),
        seed: 0,
    };
    lookup_cell::<2>(&cfg, &seeds, "CuckooH2");
    lookup_cell::<3>(&cfg, &seeds, "CuckooH3");
    lookup_cell::<4>(&cfg, &seeds, "CuckooH4");
    println!(
        "\nExpected pattern: K=2 fails before ~50% load, K=3 near ~88%, K=4 \
         sustains ≥90%; fewer sub-tables probe fewer slots and look up faster."
    );
}

fn lookup_cell<const K: usize>(cfg: &WormConfig, seeds: &[u64], name: &str) {
    let mut total = Throughput { ops: 0, nanos: 0 };
    for &seed in seeds {
        let cfg = WormConfig { seed, ..*cfg };
        let keys = WormKeys::prepare(&cfg);
        let mut t: Cuckoo<Murmur, K> = Cuckoo::with_seed(cfg.capacity_bits, seed ^ 0xC0C0);
        workloads::worm::run_build(&mut t, &keys.inserts).expect("45% load must fit");
        // Mixed stream at 50% unsuccessful (index 2 of the standard pcts).
        let (_, stream, expected) = &keys.probe_streams[2];
        let (tp, _) = workloads::worm::run_probes(&t, stream, *expected);
        total = total.merge(&tp);
    }
    println!("{name:<10} {:>14.2} {:>16}", total.m_ops_per_sec(), K);
}
