//! Adaptive self-tuning table under a phase-shifting workload.
//!
//! ```text
//! cargo run --release -p bench --bin adaptive -- --scale default
//! ```
//!
//! The paper's Figure 8 decision graph picks one scheme per *workload
//! profile* — but a long-lived index does not get one profile. This
//! binary runs the canonical shift the graph cares about:
//!
//! * **Phase A (build)**: pure inserts to ~62% load — the write-heavy
//!   regime where linear probing's cheap inserts win;
//! * **Phase B (probe)**: ~98.4% negative lookups + ~1.6% updates — the
//!   static miss-heavy mid-load band where Fig. 8 answers *fingerprint
//!   probing* (LP's miss probes must scan to the end of a run; FP
//!   rejects a 16-slot group per SIMD tag compare).
//!
//! A static table must commit to one side of that shift. The adaptive
//! table ([`MigrationPolicy::Adaptive`]) starts as LPMult, watches its
//! own counters (miss EWMA, write ratio, load factor), re-runs the
//! decision graph online, and live-migrates to FPMult a few thousand
//! ops into phase B — draining ≤ `step` old-generation entries per
//! mutating op, never blocking lookups. Reported per table:
//!
//! * per-phase and end-to-end throughput (single-key API: the phase
//!   boundary and per-op mutation latency need per-op boundaries);
//! * mutation latency p50/p99/max — for the adaptive table also split
//!   into *steady* and *migrating* ops, the cost of draining inline;
//! * for the adaptive table: when the switch fired and how long the
//!   drain ran (the `completed live migration` line is grepped by CI).
//!
//! Every row — static twins included — runs inside the same
//! [`DynamicTable`] wrapper, so the comparison isolates the *scheme
//! decision*, not the wrapper's bookkeeping. The drain step is chosen
//! for throughput (a short migration window: mid-migration misses must
//! probe both generations), which concentrates drain work on < 1% of
//! mutations — the whole-stream mutation p99 stays at steady state and
//! the drain cost shows up only in the max and the migrating-only
//! split. `growth_tail` covers the opposite corner (small steps, tight
//! per-op bounds). Run on one core, the adaptive end-to-end win is the
//! *area* between the LP and FP miss-probe curves minus one table's
//! worth of drain work; tiny smoke runs keep the table in cache where
//! LP misses are cheap, so the margin appears at `--scale default` and
//! above.

use bench::{emit, parse_args};
use metrics::{LatencyHistogram, ReportTable, Series, Throughput};
use sevendim_core::{
    AdaptiveConfig, DynamicTable, GrowthPolicy, HashTable, MigrationPolicy, TableBuilder,
    TableScheme,
};
use std::time::Instant;

/// Phase B issues one update per this many ops (~3.1% writes: below the
/// controller's 5% static/dynamic boundary, enough mutating ops to tick
/// the policy and pay the drain).
const MUTATE_EVERY: usize = 32;

/// Old-generation entries drained per mutating op during a migration.
/// Coarse on purpose: at phase B's write rate a fine step would stretch
/// the double-probing migration window across most of the stream (and
/// at `--scale default` never finish). This bounds the window to < 1%
/// of mutations; the per-op latency story for small steps is
/// `growth_tail`'s.
const DRAIN_STEP: usize = 1024;

/// Build-phase target load factor: inside Fig. 8's (0.5, 0.8) band where
/// the miss-heavy static answer is fingerprint probing.
const TARGET_LOAD: f64 = 0.62;

/// The controller re-evaluates every 64 *mutating* ops ≈ every 4096
/// stream ops at phase B's 1/64 write rate. `min_lookups` keeps phase A
/// (zero lookups) from producing a verdict at all.
const CONTROLLER: AdaptiveConfig =
    AdaptiveConfig { check_every: 64, min_lookups: 1024, cooldown: 4096 };

/// Static twins: every scheme the decision graph could have frozen.
const STATICS: [TableScheme; 6] = [
    TableScheme::LinearProbing,
    TableScheme::Quadratic,
    TableScheme::RobinHood,
    TableScheme::Cuckoo4,
    TableScheme::Fingerprint,
    TableScheme::Chained24,
];

/// splitmix64: a bijection on u64, so present keys (`mix(i)`) and absent
/// keys (`mix(PRESENT_MAX + j)`) are distinct and disjoint by input range.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn key_at(i: u64) -> u64 {
    let mut x = i;
    loop {
        let k = mix(x);
        // 0 and u64::MAX are reserved sentinels in the open-addressing
        // tables; remix far outside the workload's input range.
        if k != 0 && k != u64::MAX {
            return k;
        }
        x = x.wrapping_add(0xF00D_0000_0000_0000);
    }
}

struct Workload {
    bits: u8,
    present: u64,
    probe_ops: usize,
}

impl Workload {
    fn from_scale(initial_keys: usize, probe_ops: usize) -> Workload {
        // Size capacity from the scale's key count, then take the key
        // count *from* the capacity so the load lands on TARGET_LOAD
        // regardless of rounding to a power of two.
        let mut bits = 10u8;
        while (initial_keys as f64) > 0.8 * (1u64 << bits) as f64 {
            bits += 1;
        }
        // Rounded down to a controller window so phase A ends exactly on
        // a check boundary: the first phase-B verdict then sees a pure
        // probe-phase window (3.1% writes → Static) instead of a stale
        // tail of build inserts tipping it over the 5% boundary.
        let present = (TARGET_LOAD * (1u64 << bits) as f64) as u64 / CONTROLLER.check_every
            * CONTROLLER.check_every;
        Workload { bits, present, probe_ops }
    }
}

struct PhaseOut {
    build: Throughput,
    probe: Throughput,
    mutations: LatencyHistogram,
}

impl PhaseOut {
    fn end_to_end_mops(&self) -> f64 {
        self.build.merge(&self.probe).m_ops_per_sec()
    }
}

/// Drive both phases through the single-key API. `on_mutation` sees the
/// table *after* each phase-B update plus that update's latency — the
/// adaptive run uses it to classify steady vs migrating ops.
fn run_phases<T: HashTable + ?Sized>(
    table: &mut T,
    w: &Workload,
    mut on_mutation: impl FnMut(&mut T, u64),
) -> PhaseOut {
    let start = Instant::now();
    for i in 0..w.present {
        table.insert(key_at(i), i).expect("build phase insert failed");
    }
    let build = Throughput::new(w.present, start.elapsed());

    let mut mutations = LatencyHistogram::new();
    let mut hits = 0u64;
    let start = Instant::now();
    for op in 0..w.probe_ops {
        if op % MUTATE_EVERY == MUTATE_EVERY - 1 {
            let i = (op / MUTATE_EVERY) as u64 % w.present;
            let t0 = Instant::now();
            table.insert(key_at(i), op as u64).expect("probe phase update failed");
            let nanos = t0.elapsed().as_nanos() as u64;
            mutations.record(nanos);
            on_mutation(table, nanos);
        } else {
            // Negative probe: inputs beyond the present range stay
            // absent (splitmix64 is a bijection).
            hits += table.lookup(key_at(w.present + op as u64)).is_some() as u64;
        }
    }
    assert_eq!(hits, 0, "absent-key stream produced hits");
    PhaseOut { build, probe: Throughput::new(w.probe_ops as u64, start.elapsed()), mutations }
}

struct AdaptiveDetail {
    switch_at_op: Option<usize>,
    drain_done_at_op: Option<usize>,
    drain_done_at: Option<Instant>,
    steady: LatencyHistogram,
    migrating: LatencyHistogram,
    from_to: Option<(String, String)>,
}

fn run_adaptive(w: &Workload) -> (PhaseOut, AdaptiveDetail) {
    let factory = TableBuilder::new(TableScheme::LinearProbing);
    let mut table = DynamicTable::with_migration(
        factory,
        w.bits,
        0xADA9_71FE,
        0.9, // growth is not this bench's story; the switch keeps the same bits
        GrowthPolicy::Incremental { step: DRAIN_STEP },
        MigrationPolicy::Adaptive(CONTROLLER),
    );
    let source = table.inner().display_name();
    let mut detail = AdaptiveDetail {
        switch_at_op: None,
        drain_done_at_op: None,
        drain_done_at: None,
        steady: LatencyHistogram::new(),
        migrating: LatencyHistogram::new(),
        from_to: None,
    };
    let mut mutation_no = 0usize;
    let out = run_phases(&mut table, w, |t, nanos| {
        mutation_no += 1;
        let op = mutation_no * MUTATE_EVERY; // stream position of this update
        if t.scheme_switches() > 0 && detail.switch_at_op.is_none() {
            detail.switch_at_op = Some(op);
        }
        if detail.switch_at_op.is_some() && detail.drain_done_at_op.is_none() {
            detail.migrating.record(nanos);
            if !t.is_migrating() {
                detail.drain_done_at_op = Some(op);
                detail.drain_done_at = Some(Instant::now());
            }
        } else {
            detail.steady.record(nanos);
        }
    });
    if table.scheme_switches() > 0 {
        detail.from_to = Some((source, table.inner().display_name()));
    }
    (out, detail)
}

fn micros(nanos: u64) -> f64 {
    nanos as f64 / 1e3
}

fn main() {
    let args = parse_args(std::env::args());
    let w = Workload::from_scale(args.scale.rw_initial_keys(), args.op_count());
    println!(
        "Adaptive migration — build {} keys into 2^{} slots ({:.0}% load), then {} probe ops \
         ({:.1}% negative lookups, {:.1}% updates)\n",
        w.present,
        w.bits,
        100.0 * w.present as f64 / (1u64 << w.bits) as f64,
        w.probe_ops,
        100.0 * (MUTATE_EVERY - 1) as f64 / MUTATE_EVERY as f64,
        100.0 / MUTATE_EVERY as f64,
    );

    let ticks: Vec<String> =
        ["build M/s", "probe M/s", "total M/s", "mut p50 µs", "mut p99 µs", "mut max µs"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut panel = ReportTable::new("adaptive — phase-shift workload", "table", ticks, "mixed");
    let row = |label: &str, out: &PhaseOut| {
        Series::new(
            label,
            vec![
                Some(out.build.m_ops_per_sec()),
                Some(out.probe.m_ops_per_sec()),
                Some(out.end_to_end_mops()),
                Some(micros(out.mutations.p50())),
                Some(micros(out.mutations.p99())),
                Some(micros(out.mutations.max_nanos())),
            ],
        )
    };

    let (adaptive_out, detail) = run_adaptive(&w);
    // run_phases has just returned: "now" is the probe phase's end to
    // within microseconds, good enough for the tail-throughput split.
    let probe_end = Instant::now();
    let adaptive_label = match &detail.from_to {
        Some((from, to)) => format!("Adaptive({from}->{to})"),
        None => "Adaptive(no switch)".to_string(),
    };
    panel.push(row(&adaptive_label, &adaptive_out));

    let mut static_rows: Vec<(String, f64)> = Vec::new();
    for scheme in STATICS {
        // Same wrapper (growth threshold far above the workload's load),
        // so the static rows pay the identical per-op bookkeeping.
        let builder = TableBuilder::new(scheme)
            .bits(w.bits)
            .seed(0xADA9_71FE)
            .simd(scheme == TableScheme::Fingerprint)
            .grow_at(0.9)
            .incremental(DRAIN_STEP);
        let mut table = match builder.try_build() {
            Ok(t) => t,
            Err(e) => {
                println!("{}: skipped ({e})", scheme.name());
                continue;
            }
        };
        let out = run_phases(table.as_mut(), &w, |_, _| {});
        panel.push(row(&format!("{}Mult", scheme.name()), &out));
        static_rows.push((format!("{}Mult", scheme.name()), out.end_to_end_mops()));
    }
    emit(&panel, args.csv);

    // The acceptance lines: did a live migration complete, what did the
    // drain cost, and does the adaptive table beat every static twin
    // end-to-end?
    match (&detail.from_to, detail.switch_at_op) {
        (Some((from, to)), Some(at)) => {
            let drained = match detail.drain_done_at_op {
                Some(done) => format!("drain finished {} ops later", done - at),
                None => "drain still in flight at stream end".to_string(),
            };
            println!(
                "adaptive: completed live migration {from} -> {to} at probe op {at} ({drained})"
            );
            let steady_p99 = detail.steady.p99().max(1);
            println!(
                "adaptive: whole-stream mutation p99 {:.2} µs = {:.1}x steady-state p99 \
                 (drain-bearing ops: {:.2} µs p99, {} of {} mutations)",
                micros(adaptive_out.mutations.p99()),
                adaptive_out.mutations.p99() as f64 / steady_p99 as f64,
                micros(detail.migrating.p99()),
                detail.migrating.count(),
                adaptive_out.mutations.count(),
            );
            if let (Some(done), Some(done_at)) = (detail.drain_done_at_op, detail.drain_done_at) {
                let tail_ops = (w.probe_ops - done) as u64;
                let tail = Throughput::new(tail_ops, probe_end.duration_since(done_at));
                println!(
                    "adaptive: post-drain tail {:.2} M ops/s over the last {} ops \
                     (convergence to the static target)",
                    tail.m_ops_per_sec(),
                    tail_ops
                );
            }
        }
        _ => println!("adaptive: no migration triggered (stream too short for the controller)"),
    }
    let total = adaptive_out.end_to_end_mops();
    for (name, mops) in &static_rows {
        println!("adaptive vs {name}: {:.1}% end-to-end", 100.0 * total / mops);
    }
}
