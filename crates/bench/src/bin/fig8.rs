//! Figure 8: validating the decision graph against measurements.
//!
//! The paper condenses its study into a practitioner's decision graph;
//! here we *measure* a grid of workload profiles and check that the
//! graph's recommendation is at (or near) the top of the measured
//! ranking. Static read profiles are scored by WORM lookup throughput at
//! the profile's load factor and hit ratio; write-heavy/dynamic profiles
//! by RW stream throughput. A recommendation "holds" when it reaches at
//! least 85% of the best measured candidate — the graph trades a little
//! peak performance for robustness, and the paper's own winners differ
//! by less than that in adjacent cells.

use bench::{parse_args, rw_cell, worm_cell, HashId, Scheme};
use sevendim_core::decision::{recommend, Mutability, TableChoice, WorkloadProfile};
use workloads::{Distribution, RwConfig, WormConfig};

const CANDIDATES: [(Scheme, TableChoice); 6] = [
    (Scheme::Chained24, TableChoice::ChainedH24Mult),
    (Scheme::Cuckoo4, TableChoice::CuckooH4Mult),
    (Scheme::LP, TableChoice::LPMult),
    (Scheme::QP, TableChoice::QPMult),
    (Scheme::RH, TableChoice::RHMult),
    (Scheme::Fingerprint, TableChoice::FpMult),
];

fn main() {
    let args = parse_args(std::env::args());
    let (_, medium, _) = args.scale.capacity_bits();
    let bits = args.log2_capacity.unwrap_or(medium);
    let seeds = args.seed_list();
    println!("Figure 8 — decision-graph validation at capacity 2^{bits}\n");
    println!("{:<44} {:<16} {:<22} verdict", "profile", "recommended", "measured best");
    println!("{}", "-".repeat(100));

    let mut agree = 0usize;
    let mut total = 0usize;

    // Static, read-only profiles: (load factor, successful ratio, dense).
    for &(lf, succ, dense) in &[
        (0.35, 1.0, false),
        (0.35, 0.25, false),
        (0.50, 1.0, true),
        (0.50, 0.25, false),
        (0.70, 1.0, false),
        (0.70, 0.0, false),
        (0.90, 1.0, false),
        (0.90, 0.25, false),
    ] {
        let profile = WorkloadProfile {
            load_factor: lf,
            successful_ratio: succ,
            write_ratio: 0.0,
            dense_keys: dense,
            mutability: Mutability::Static,
        };
        let rec = recommend(&profile);
        let dist = if dense { Distribution::Dense } else { Distribution::Sparse };
        let unsuccessful_pct = ((1.0 - succ) * 100.0).round() as u8;
        let cfg = WormConfig {
            capacity_bits: bits,
            load_factor: lf,
            dist,
            probes: args.probe_count(),
            seed: 0,
        };
        let scores: Vec<(TableChoice, Option<f64>)> = CANDIDATES
            .iter()
            .map(|&(scheme, choice)| {
                let out = worm_cell(scheme, HashId::Mult, &cfg, &seeds);
                let v = out
                    .lookup_mops
                    .iter()
                    .find(|(p, _)| *p == unsuccessful_pct)
                    .and_then(|(_, v)| *v);
                (choice, v)
            })
            .collect();
        let label = format!(
            "static lf={lf:.2} successful={:.0}% {}",
            succ * 100.0,
            if dense { "dense" } else { "sparse" }
        );
        tally(&label, rec, &scores, &mut agree, &mut total);
    }

    // Dynamic profiles scored by RW throughput: (update %, threshold).
    for &(update_pct, threshold) in &[(75u8, 0.5f64), (75, 0.9), (25, 0.7), (5, 0.7)] {
        let profile = WorkloadProfile {
            load_factor: threshold,
            successful_ratio: 0.75,
            write_ratio: update_pct as f64 / 100.0,
            dense_keys: false,
            mutability: Mutability::Dynamic,
        };
        let rec = recommend(&profile);
        let cfg = RwConfig {
            initial_keys: args.scale.rw_initial_keys(),
            operations: args.op_count() / 4,
            update_pct,
            seed: 0xF16,
        };
        let scores: Vec<(TableChoice, Option<f64>)> = CANDIDATES
            .iter()
            .map(|&(scheme, choice)| {
                let v = rw_cell(scheme, HashId::Mult, threshold, cfg).ok().map(|o| o.mops);
                (choice, v)
            })
            .collect();
        let label = format!("dynamic updates={update_pct}% grow-at={threshold:.1}");
        tally(&label, rec, &scores, &mut agree, &mut total);
    }

    println!("\n{agree}/{total} profiles: recommendation within 85% of measured best");
}

fn tally(
    label: &str,
    rec: TableChoice,
    scores: &[(TableChoice, Option<f64>)],
    agree: &mut usize,
    total: &mut usize,
) {
    *total += 1;
    let best =
        scores.iter().filter_map(|&(c, v)| v.map(|v| (c, v))).max_by(|a, b| a.1.total_cmp(&b.1));
    let rec_score = scores.iter().find(|(c, _)| *c == rec).and_then(|&(_, v)| v);
    let (verdict, best_str) = match (best, rec_score) {
        (Some((bc, bv)), Some(rv)) => {
            let ok = rv >= 0.85 * bv;
            if ok {
                *agree += 1;
            }
            (if ok { "OK" } else { "MISS" }, format!("{} ({bv:.1} M/s; rec {rv:.1})", bc.name()))
        }
        (Some((bc, bv)), None) => ("MISS(rec absent)", format!("{} ({bv:.1} M/s)", bc.name())),
        _ => ("no data", "-".to_string()),
    };
    println!("{label:<44} {:<16} {best_str:<22} {verdict}", rec.name());
}
