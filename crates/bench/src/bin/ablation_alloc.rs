//! Ablation: slab vs per-entry allocation for chained hashing (§2.1).
//!
//! The paper reports that a naive allocator — "one malloc call per
//! insertion, and one free call per delete" — costs chained hashing up to
//! an order of magnitude versus slab (bulk) allocation, plus footprint
//! overhead from fragmentation and allocator metadata. This binary
//! rebuilds both variants of ChainedH8/H24 side by side, first for a
//! build-only phase, then for a delete/insert churn phase that stresses
//! the free-and-reallocate path, and prints the slowdowns.

use bench::parse_args;
use hashfn::{HashFamily, MultShift};
use metrics::{bytes_to_mb, Throughput};
use sevendim_core::{ChainedTable24, ChainedTable8, HashTable, MemoryBudget};
use slab_alloc::{BoxedAllocator, EntryAllocator, SlabAllocator};
use workloads::Distribution;

fn main() {
    let args = parse_args(std::env::args());
    let (_, medium, _) = args.scale.capacity_bits();
    let bits = args.log2_capacity.unwrap_or(medium);
    let n = ((1usize << bits) as f64 * 0.45) as usize;
    let sets = Distribution::Sparse.generate_with_misses(n, n, 42);
    println!(
        "Allocation ablation — ChainedH8/H24 with slab vs one-Box-per-entry, \
         {n} sparse inserts then {n} delete/insert churn pairs, directory 2^{}\n",
        bits - 1
    );
    println!(
        "{:<24} {:>13} {:>13} {:>10} {:>9} {:>9}",
        "table", "build M/s", "churn M/s", "alloc MB", "build x", "churn x"
    );

    fn h8<A: EntryAllocator>(bits: u8, alloc: A) -> ChainedTable8<MultShift, A> {
        ChainedTable8::new(
            bits - 1,
            MultShift::from_seed(1),
            alloc,
            MemoryBudget::unlimited(),
            None,
        )
    }
    fn h24<A: EntryAllocator>(bits: u8, alloc: A) -> ChainedTable24<MultShift, A> {
        ChainedTable24::new(
            bits - 1,
            MultShift::from_seed(1),
            alloc,
            MemoryBudget::unlimited(),
            None,
        )
    }

    // Slab allocators are pre-sized: "bulk-allocate many (or up to all)
    // entries in one large array" — that is the strategy under test.
    let slab8 = run(h8(bits, SlabAllocator::with_capacity(n)), &sets.inserts, &sets.misses);
    let boxed8 = run(h8(bits, BoxedAllocator::new()), &sets.inserts, &sets.misses);
    let slab24 = run(h24(bits, SlabAllocator::with_capacity(n)), &sets.inserts, &sets.misses);
    let boxed24 = run(h24(bits, BoxedAllocator::new()), &sets.inserts, &sets.misses);

    report("ChainedH8Mult (slab)", &slab8, &slab8);
    report("ChainedH8Mult (boxed)", &boxed8, &slab8);
    report("ChainedH24Mult (slab)", &slab24, &slab24);
    report("ChainedH24Mult (boxed)", &boxed24, &slab24);

    println!(
        "\nExpected pattern (paper §2.1): slab beats per-entry allocation, \
         most visibly under churn (every delete is a free, every insert a \
         malloc); the paper saw up to 10x with its allocator. Slab also \
         avoids per-allocation metadata and fragmentation."
    );
}

struct Out {
    build: Throughput,
    churn: Throughput,
    bytes: usize,
}

fn run<A: EntryAllocator>(mut table: impl ChainedOps<A>, inserts: &[u64], fresh: &[u64]) -> Out {
    let build = Throughput::measure(inserts.len() as u64, || {
        for &k in inserts {
            table.ins(k);
        }
    });
    // Churn: delete an old key, insert a fresh one — a free+malloc pair
    // per iteration in the naive allocator.
    let churn = Throughput::measure(2 * inserts.len() as u64, || {
        for (&old, &new) in inserts.iter().zip(fresh) {
            table.del(old);
            table.ins(new);
        }
    });
    Out { build, churn, bytes: table.bytes() }
}

fn report(label: &str, out: &Out, baseline: &Out) {
    println!(
        "{label:<24} {:>13.2} {:>13.2} {:>10.1} {:>8.2}x {:>8.2}x",
        out.build.m_ops_per_sec(),
        out.churn.m_ops_per_sec(),
        bytes_to_mb(out.bytes),
        baseline.build.m_ops_per_sec() / out.build.m_ops_per_sec(),
        baseline.churn.m_ops_per_sec() / out.churn.m_ops_per_sec(),
    );
}

/// Minimal common surface over the two chained table types (they don't
/// share a type parameterization the closure-based `run` could name).
trait ChainedOps<A: EntryAllocator> {
    fn ins(&mut self, k: u64);
    fn del(&mut self, k: u64);
    fn bytes(&self) -> usize;
}

impl<A: EntryAllocator> ChainedOps<A> for ChainedTable8<MultShift, A> {
    fn ins(&mut self, k: u64) {
        self.insert(k, k).expect("unbudgeted insert");
    }
    fn del(&mut self, k: u64) {
        self.delete(k);
    }
    fn bytes(&self) -> usize {
        self.allocated_bytes()
    }
}

impl<A: EntryAllocator> ChainedOps<A> for ChainedTable24<MultShift, A> {
    fn ins(&mut self, k: u64) {
        self.insert(k, k).expect("unbudgeted insert");
    }
    fn del(&mut self, k: u64) {
        self.delete(k);
    }
    fn bytes(&self) -> usize {
        self.allocated_bytes()
    }
}
