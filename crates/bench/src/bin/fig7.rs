//! Figure 7: table layout (AoS vs SoA) and SIMD probing for LPMult.
//!
//! Medium capacity, sparse keys, load factors 50/70/90%: insertion
//! throughput plus lookup panels over the unsuccessful-percentage sweep
//! for the four variants LPAoSMult, LPAoSMultSIMD, LPSoAMult,
//! LPSoAMultSIMD. Run on an AVX2 machine; without AVX2 the SIMD variants
//! fall back to scalar probing and the harness says so.

use bench::{emit, parse_args, worm_cell_with};
use hashfn::MultShift;
use metrics::{ReportTable, Series};
use sevendim_core::{simd::simd_available, LinearProbing, LinearProbingSoA};
use workloads::{Distribution, WormConfig};

const LOAD_FACTORS: [f64; 3] = [0.50, 0.70, 0.90];
const VARIANTS: [&str; 4] = ["LPAoSMult", "LPAoSMultSIMD", "LPSoAMult", "LPSoAMultSIMD"];

fn main() {
    let args = parse_args(std::env::args());
    let (_, medium, _) = args.scale.capacity_bits();
    let bits = args.log2_capacity.unwrap_or(medium);
    let seeds = args.seed_list();
    println!(
        "Figure 7 — layout & SIMD for LPMult, capacity 2^{bits}, sparse keys \
         (AVX2 {})\n",
        if simd_available() { "available" } else { "NOT available — SIMD variants run scalar" }
    );

    let cells: Vec<Vec<_>> = (0..4)
        .map(|variant| {
            LOAD_FACTORS
                .iter()
                .map(|&lf| {
                    let cfg = WormConfig {
                        capacity_bits: bits,
                        load_factor: lf,
                        dist: Distribution::Sparse,
                        probes: args.probe_count(),
                        seed: 0,
                    };
                    match variant {
                        0 => worm_cell_with(
                            |s| Ok(LinearProbing::<MultShift>::with_seed(bits, s)),
                            &cfg,
                            &seeds,
                        ),
                        1 => worm_cell_with(
                            |s| Ok(LinearProbing::<MultShift>::with_seed_simd(bits, s)),
                            &cfg,
                            &seeds,
                        ),
                        2 => worm_cell_with(
                            |s| Ok(LinearProbingSoA::<MultShift>::with_seed(bits, s)),
                            &cfg,
                            &seeds,
                        ),
                        _ => worm_cell_with(
                            |s| Ok(LinearProbingSoA::<MultShift>::with_seed_simd(bits, s)),
                            &cfg,
                            &seeds,
                        ),
                    }
                })
                .collect()
        })
        .collect();

    let mut panel = ReportTable::new(
        "Fig 7(a) — insertions",
        "load factor %",
        LOAD_FACTORS.iter().map(|lf| format!("{:.0}", lf * 100.0)).collect(),
        "M inserts/s",
    );
    for (v, name) in VARIANTS.iter().enumerate() {
        panel.push(Series::new(*name, cells[v].iter().map(|c| c.insert_mops).collect()));
    }
    emit(&panel, args.csv);

    for (li, &lf) in LOAD_FACTORS.iter().enumerate() {
        let mut panel = ReportTable::new(
            format!("Fig 7 — lookups at {:.0}% load factor", lf * 100.0),
            "unsuccessful %",
            cells[0][li].lookup_mops.iter().map(|(p, _)| p.to_string()).collect(),
            "M lookups/s",
        );
        for (v, name) in VARIANTS.iter().enumerate() {
            panel.push(Series::new(
                *name,
                cells[v][li].lookup_mops.iter().map(|&(_, x)| x).collect(),
            ));
        }
        emit(&panel, args.csv);
    }
    println!(
        "Expected pattern (paper): AoS wins inserts (gap narrowing with load); \
         AoS wins successful-heavy lookups; SoA+SIMD best for lookups overall; \
         SIMD hurts inserts at low load, helps from ~75% on."
    );
}
