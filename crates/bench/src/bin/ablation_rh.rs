//! Ablation: what Robin Hood's tuning actually buys (§2.4, §5.2).
//!
//! Three claims to verify against plain LP with identical contents:
//!
//! 1. total displacement is unchanged, but variance and maximum shrink;
//! 2. successful lookups pay a small penalty (paper: "often within
//!    1–5%");
//! 3. unsuccessful lookups at high load factors improve substantially
//!    (paper: "up to more than a factor 4");
//! 4. the *rejected* abort criteria of §2.4 — the `dmax` bound and the
//!    checked-every-probe variant — underperform the tuned cache-line
//!    check, reproducing why the paper discarded them.

use bench::{parse_args, worm_cell_with};
use hashfn::MultShift;
use sevendim_core::{HashTable, LinearProbing, RhLookupMode, RobinHood};
use workloads::{Distribution, WormConfig};

fn main() {
    let args = parse_args(std::env::args());
    let (_, medium, _) = args.scale.capacity_bits();
    let bits = args.log2_capacity.unwrap_or(medium);
    let seeds = args.seed_list();

    println!("Robin Hood ablation — capacity 2^{bits}, sparse keys\n");

    // Claim 1: displacement statistics at 90% load.
    let keys = Distribution::Sparse.generate(((1usize << bits) as f64 * 0.9) as usize, 7);
    let mut lp: LinearProbing<MultShift> = LinearProbing::with_seed(bits, 3);
    let mut rh: RobinHood<MultShift> = RobinHood::with_seed(bits, 3);
    for &k in &keys {
        lp.insert(k, k).unwrap();
        rh.insert(k, k).unwrap();
    }
    let sl = lp.displacement_stats();
    let sr = rh.displacement_stats();
    println!("displacement @90% load   {:>12} {:>12}", "LPMult", "RHMult");
    println!("  total                  {:>12} {:>12}", sl.total, sr.total);
    println!("  mean                   {:>12.2} {:>12.2}", sl.mean, sr.mean);
    println!("  max                    {:>12} {:>12}", sl.max, sr.max);
    println!("  variance               {:>12.1} {:>12.1}", sl.variance, sr.variance);
    assert_eq!(sl.total, sr.total, "RH must preserve total displacement");
    println!();

    // Claims 2 & 3: lookup throughput across load factors and miss rates.
    println!(
        "{:<6} {:<14} {:>12} {:>12} {:>10}",
        "lf%", "unsuccessful%", "LPMult", "RHMult", "RH/LP"
    );
    for &lf in &[0.5, 0.7, 0.9] {
        let cfg = WormConfig {
            capacity_bits: bits,
            load_factor: lf,
            dist: Distribution::Sparse,
            probes: args.probe_count(),
            seed: 0,
        };
        let lp_out = worm_cell_with(
            |s| Ok::<_, sevendim_core::TableError>(LinearProbing::<MultShift>::with_seed(bits, s)),
            &cfg,
            &seeds,
        );
        let rh_out = worm_cell_with(
            |s| Ok::<_, sevendim_core::TableError>(RobinHood::<MultShift>::with_seed(bits, s)),
            &cfg,
            &seeds,
        );
        for (i, &(pct, lp_v)) in lp_out.lookup_mops.iter().enumerate() {
            let (_, rh_v) = rh_out.lookup_mops[i];
            let (lp_v, rh_v) = (lp_v.unwrap(), rh_v.unwrap());
            println!(
                "{:<6.0} {:<14} {:>12.2} {:>12.2} {:>9.2}x",
                lf * 100.0,
                pct,
                lp_v,
                rh_v,
                rh_v / lp_v
            );
        }
    }
    println!(
        "\nExpected pattern (paper): RH ≈ LP at 0% unsuccessful (small penalty), \
         RH pulls ahead as load factor and miss rate grow — up to >4× at 90%/100%."
    );

    // Claim 4: the rejected abort criteria, measured head-to-head on
    // all-unsuccessful probes at 90% load.
    println!("\nabort-criterion ablation — 100% unsuccessful lookups @90% load:");
    let n = ((1usize << bits) as f64 * 0.9) as usize;
    let sets = workloads::Distribution::Sparse.generate_with_misses(n, args.probe_count(), 13);
    let mut rh: RobinHood<MultShift> = RobinHood::with_seed(bits, 5);
    for &k in &sets.inserts {
        rh.insert(k, k).unwrap();
    }
    println!(
        "  table dmax = {}, mean displacement = {:.1}",
        rh.dmax(),
        rh.displacement_stats().mean
    );
    // The abort criterion is a table configuration now: identical contents,
    // three lookup modes, probed through the one trait entry point.
    for (name, mode) in [
        ("tuned (cache-line check)", RhLookupMode::CacheLine),
        ("dmax bound (rejected)", RhLookupMode::DmaxBound),
        ("checked every probe (rejected)", RhLookupMode::CheckedEveryProbe),
    ] {
        let mut table = rh.clone();
        table.set_lookup_mode(mode);
        let mut hits = 0u64;
        let t = metrics::Throughput::measure(sets.misses.len() as u64, || {
            for &k in &sets.misses {
                if table.lookup(k).is_some() {
                    hits += 1;
                }
            }
        });
        assert_eq!(hits, 0, "miss stream must not hit");
        println!("  {name:<32} {:>10.2} M lookups/s", t.m_ops_per_sec());
    }
    println!(
        "  (paper §2.4: dmax is 'often still too high'; per-probe checks are \
         'prohibitively expensive'; the cache-line check wins.)"
    );
}
