//! Figure 6: the absolute-best-performer matrix for WORM.
//!
//! For every capacity (S/M/L) × distribution × load factor (50/70/90%),
//! report which table wins insertions and which wins lookups at each
//! unsuccessful-query percentage, with its throughput — the color-coded
//! matrix of the paper's Figure 6. Candidates are the Mult-driven tables
//! (the paper: "no hash table is the absolute best using Murmur") plus
//! ChainedH24Mult where its memory budget allows.

use bench::{parse_args, worm_cell, HashId, Scheme};
use workloads::{Distribution, WormConfig};

const LOAD_FACTORS: [f64; 3] = [0.50, 0.70, 0.90];
const CANDIDATES: [Scheme; 5] =
    [Scheme::Chained24, Scheme::Cuckoo4, Scheme::LP, Scheme::QP, Scheme::RH];

fn main() {
    let args = parse_args(std::env::args());
    let (s, m, l) = args.scale.capacity_bits();
    let seeds = args.seed_list();
    println!(
        "Figure 6 — absolute best performers (Mult candidates), \
         capacities S=2^{s} M=2^{m} L=2^{l}\n"
    );
    println!(
        "{:<8} {:<6} {:<4} | {:<22} | per-unsuccessful-% lookup winners",
        "dist", "lf%", "cap", "insert winner"
    );
    println!("{}", "-".repeat(110));

    for dist in Distribution::ALL {
        for &lf in &LOAD_FACTORS {
            for (cap_name, bits) in [("S", s), ("M", m), ("L", l)] {
                let cfg = WormConfig {
                    capacity_bits: bits,
                    load_factor: lf,
                    dist,
                    probes: args.probe_count(),
                    seed: 0,
                };
                let cells: Vec<_> = CANDIDATES
                    .iter()
                    .map(|&scheme| (scheme, worm_cell(scheme, HashId::Mult, &cfg, &seeds)))
                    .collect();

                let insert_winner = cells
                    .iter()
                    .filter_map(|(sch, c)| c.insert_mops.map(|v| (sch.label(HashId::Mult), v)))
                    .max_by(|a, b| a.1.total_cmp(&b.1));

                let n_pcts = cells[0].1.lookup_mops.len();
                let lookup_winners: Vec<String> = (0..n_pcts)
                    .map(|i| {
                        let pct = cells[0].1.lookup_mops[i].0;
                        match cells
                            .iter()
                            .filter_map(|(sch, c)| {
                                c.lookup_mops[i].1.map(|v| (sch.label(HashId::Mult), v))
                            })
                            .max_by(|a, b| a.1.total_cmp(&b.1))
                        {
                            Some((label, v)) => format!("{pct}%:{label}({v:.0})"),
                            None => format!("{pct}%:-"),
                        }
                    })
                    .collect();

                let iw = match insert_winner {
                    Some((label, v)) => format!("{label} ({v:.0} M/s)"),
                    None => "-".to_string(),
                };
                println!(
                    "{:<8} {:<6.0} {:<4} | {:<22} | {}",
                    dist.name(),
                    lf * 100.0,
                    cap_name,
                    iw,
                    lookup_winners.join("  ")
                );
            }
        }
    }
    println!(
        "\nExpected pattern (paper): QP wins most insert cells (LP on dense), \
         RH dominates mid-load lookups, CuckooH4 takes 90%-load cells, \
         ChainedH24 the 100%-unsuccessful column at 50% load."
    );
}
