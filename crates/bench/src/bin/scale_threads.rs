//! Thread scaling of sharded tables — the dimension the paper leaves on
//! one core.
//!
//! ```text
//! cargo run --release -p bench --bin scale_threads -- --scale default --threads 8
//! ```
//!
//! Two panels per scheme × Mult cell, each sweeping worker threads
//! (powers of two up to `--threads`, default: machine parallelism ≤ 8):
//!
//! * **lookup** — successful lookups against a read-only sharded table at
//!   the out-of-cache capacity (the paper's "large" size), the regime
//!   where per-shard batch prefetching and lock-free-in-expectation
//!   routing should scale near-linearly;
//! * **read-only, optimistic vs locked** — single-key `lookup_shared`
//!   over the schemes with a seqlock read path (LP, RH), once with
//!   optimistic reads on (two atomic loads per probe, no stores, readers
//!   never serialize) and once forced through the per-shard mutex. The
//!   per-key path makes the synchronization cost visible — batches
//!   amortize it away — and the optimistic/locked ratio at the widest
//!   sweep point is the headline number for lock-free reads;
//! * **read/write** — the paper's RW mix (§6) at update percentages
//!   0/25/75 over per-shard *growing* tables ([`workloads::rw`]'s
//!   concurrent driver, disjoint key regions per thread), where scaling
//!   is bounded by lock hold times of the write batches and per-shard
//!   rehashes.
//!
//! The shard count is fixed across the sweep (four shards per worker at
//! the maximum thread count, capped at 256), so every thread count probes
//! the *same* table — the sweep isolates thread scaling from table
//! layout.

use bench::{
    emit, lookup_scale_cell, parse_args, readonly_scale_cell, rw_scale_cell, HashId, LookupScale,
    Scheme,
};
use metrics::{ReportTable, Series};
use sevendim_core::{TableBuilder, TableScheme};
use workloads::RwConfig;

const TABLES: [(Scheme, HashId); 4] = [
    (Scheme::LP, HashId::Mult),
    (Scheme::RH, HashId::Mult),
    (Scheme::Cuckoo4, HashId::Mult),
    (Scheme::Chained24, HashId::Mult),
];

/// RW update percentages for the scaling panel: read-only, the paper's
/// "typical OLAP-ish" low-update mix, and write-heavy.
const UPDATE_PCTS: [u8; 3] = [0, 25, 75];

/// Schemes with a seqlock read path (the read-only panel compares their
/// optimistic and locked variants; schemes without one would measure the
/// same locked path twice).
const OPTIMISTIC_TABLES: [(Scheme, HashId); 2] =
    [(Scheme::LP, HashId::Mult), (Scheme::RH, HashId::Mult)];

fn main() {
    let args = parse_args(std::env::args());
    let sweep = args.thread_sweep();
    let max_threads = args.max_threads();
    let (_, _, large_bits) = args.scale.capacity_bits();
    let bits = args.log2_capacity.unwrap_or(large_bits);
    let probes = args.probe_count();
    // Fixed shard count sized for the widest sweep point, using the
    // builder's own sizing rule so the bench measures exactly what
    // `.concurrency(max_threads)` users get.
    let shard_bits =
        TableBuilder::new(TableScheme::LinearProbing).concurrency(max_threads).shard_bits();
    let ticks: Vec<String> = sweep.iter().map(|t| t.to_string()).collect();

    println!(
        "Thread scaling — 2^{shard_bits} shards, lookups on 2^{bits} slots at 50% load \
         ({probes} probes), RW from {} initial keys ({} ops)\n",
        args.scale.rw_initial_keys(),
        args.op_count(),
    );

    let mut lookup = ReportTable::new(
        "scale_threads — successful lookups, out-of-cache table".to_string(),
        "threads",
        ticks.clone(),
        "M ops/s",
    );
    let cell = LookupScale { bits, shard_bits, load: 0.5, probes, seed: 0xBA5E, optimistic: true };
    let mut lookup_curves: Vec<(String, Vec<f64>)> = Vec::new();
    for &(scheme, h) in &TABLES {
        let curve: Vec<f64> =
            sweep.iter().map(|&t| lookup_scale_cell(scheme, h, &cell, t).mops).collect();
        lookup.push(Series::new(scheme.label(h), curve.iter().map(|&m| Some(m)).collect()));
        lookup_curves.push((scheme.label(h), curve));
    }
    emit(&lookup, args.csv);

    // Read-only panel: the same table probed key-by-key through
    // `lookup_shared`, seqlock path vs forced mutex. Fewer probes than the
    // batch panel — single-key probing forgoes prefetching, so each probe
    // is an exposed cache miss.
    let mut readonly = ReportTable::new(
        "scale_threads — read-only lookup_shared, optimistic (seqlock) vs locked".to_string(),
        "threads",
        ticks.clone(),
        "M ops/s",
    );
    let ro_probes = (probes / 4).max(1);
    let mut ro_ratios: Vec<(String, f64, f64)> = Vec::new();
    for &(scheme, h) in &OPTIMISTIC_TABLES {
        let mut at_max = [0.0f64; 2];
        for (i, optimistic) in [true, false].into_iter().enumerate() {
            let ro_cell = LookupScale { probes: ro_probes, optimistic, ..cell };
            let curve: Vec<f64> =
                sweep.iter().map(|&t| readonly_scale_cell(scheme, h, &ro_cell, t).mops).collect();
            at_max[i] = *curve.last().unwrap();
            let tag = if optimistic { "optimistic" } else { "locked" };
            readonly.push(Series::new(
                format!("{} {tag}", scheme.label(h)),
                curve.into_iter().map(Some).collect(),
            ));
        }
        ro_ratios.push((scheme.label(h), at_max[0], at_max[1]));
    }
    emit(&readonly, args.csv);

    for &pct in &UPDATE_PCTS {
        let mut rw = ReportTable::new(
            format!("scale_threads — RW mix, {pct}% updates, growing at 70%"),
            "threads",
            ticks.clone(),
            "M ops/s",
        );
        for &(scheme, h) in &TABLES {
            let vals: Vec<Option<f64>> = sweep
                .iter()
                .map(|&t| {
                    let cfg = RwConfig {
                        initial_keys: args.scale.rw_initial_keys(),
                        operations: args.op_count(),
                        update_pct: pct,
                        seed: 0x5CA1E,
                    };
                    rw_scale_cell(scheme, h, shard_bits, 0.7, cfg, t).ok().map(|p| p.mops)
                })
                .collect();
            rw.push(Series::new(scheme.label(h), vals));
        }
        emit(&rw, args.csv);
    }

    // Speedup summary: the headline number of the experiment, read off
    // the already-measured curve (sweep[0] == 1, last == max_threads).
    if sweep.len() > 1 {
        println!("lookup speedup at {max_threads} threads vs 1 (same table, same probes):");
        for (label, curve) in &lookup_curves {
            let (one, many) = (curve[0], curve[curve.len() - 1]);
            println!("  {label:<16} {:>5.2}x", many / one);
        }
        println!();
    }

    // Optimistic/locked ratio at the widest sweep point. Below 8 cores the
    // locked baseline is barely contended (fewer readers than shards ever
    // collide on a mutex), so the ratio is reported but not meaningful as
    // an acceptance number — say so rather than print a misleading "1.1x".
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("read-only optimistic vs locked at {max_threads} threads:");
    for (label, opt, locked) in &ro_ratios {
        println!("  {label:<16} {opt:>8.1} vs {locked:>8.1} M ops/s  ({:>5.2}x)", opt / locked);
    }
    if cores < 8 {
        println!("  (host has {cores} cores — mutex contention, and thus the gap, needs >= 8)");
    }
}
