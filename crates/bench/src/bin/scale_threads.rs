//! Thread scaling of sharded tables — the dimension the paper leaves on
//! one core.
//!
//! ```text
//! cargo run --release -p bench --bin scale_threads -- --scale default --threads 8
//! ```
//!
//! Two panels per scheme × Mult cell, each sweeping worker threads
//! (powers of two up to `--threads`, default: machine parallelism ≤ 8):
//!
//! * **lookup** — successful lookups against a read-only sharded table at
//!   the out-of-cache capacity (the paper's "large" size), the regime
//!   where per-shard batch prefetching and lock-free-in-expectation
//!   routing should scale near-linearly;
//! * **read/write** — the paper's RW mix (§6) at update percentages
//!   0/25/75 over per-shard *growing* tables ([`workloads::rw`]'s
//!   concurrent driver, disjoint key regions per thread), where scaling
//!   is bounded by lock hold times of the write batches and per-shard
//!   rehashes.
//!
//! The shard count is fixed across the sweep (four shards per worker at
//! the maximum thread count, capped at 256), so every thread count probes
//! the *same* table — the sweep isolates thread scaling from table
//! layout.

use bench::{emit, lookup_scale_cell, parse_args, rw_scale_cell, HashId, LookupScale, Scheme};
use metrics::{ReportTable, Series};
use sevendim_core::{TableBuilder, TableScheme};
use workloads::RwConfig;

const TABLES: [(Scheme, HashId); 4] = [
    (Scheme::LP, HashId::Mult),
    (Scheme::RH, HashId::Mult),
    (Scheme::Cuckoo4, HashId::Mult),
    (Scheme::Chained24, HashId::Mult),
];

/// RW update percentages for the scaling panel: read-only, the paper's
/// "typical OLAP-ish" low-update mix, and write-heavy.
const UPDATE_PCTS: [u8; 3] = [0, 25, 75];

fn main() {
    let args = parse_args(std::env::args());
    let sweep = args.thread_sweep();
    let max_threads = args.max_threads();
    let (_, _, large_bits) = args.scale.capacity_bits();
    let bits = args.log2_capacity.unwrap_or(large_bits);
    let probes = args.probe_count();
    // Fixed shard count sized for the widest sweep point, using the
    // builder's own sizing rule so the bench measures exactly what
    // `.concurrency(max_threads)` users get.
    let shard_bits =
        TableBuilder::new(TableScheme::LinearProbing).concurrency(max_threads).shard_bits();
    let ticks: Vec<String> = sweep.iter().map(|t| t.to_string()).collect();

    println!(
        "Thread scaling — 2^{shard_bits} shards, lookups on 2^{bits} slots at 50% load \
         ({probes} probes), RW from {} initial keys ({} ops)\n",
        args.scale.rw_initial_keys(),
        args.op_count(),
    );

    let mut lookup = ReportTable::new(
        "scale_threads — successful lookups, out-of-cache table".to_string(),
        "threads",
        ticks.clone(),
        "M ops/s",
    );
    let cell = LookupScale { bits, shard_bits, load: 0.5, probes, seed: 0xBA5E };
    let mut lookup_curves: Vec<(String, Vec<f64>)> = Vec::new();
    for &(scheme, h) in &TABLES {
        let curve: Vec<f64> =
            sweep.iter().map(|&t| lookup_scale_cell(scheme, h, &cell, t).mops).collect();
        lookup.push(Series::new(scheme.label(h), curve.iter().map(|&m| Some(m)).collect()));
        lookup_curves.push((scheme.label(h), curve));
    }
    emit(&lookup, args.csv);

    for &pct in &UPDATE_PCTS {
        let mut rw = ReportTable::new(
            format!("scale_threads — RW mix, {pct}% updates, growing at 70%"),
            "threads",
            ticks.clone(),
            "M ops/s",
        );
        for &(scheme, h) in &TABLES {
            let vals: Vec<Option<f64>> = sweep
                .iter()
                .map(|&t| {
                    let cfg = RwConfig {
                        initial_keys: args.scale.rw_initial_keys(),
                        operations: args.op_count(),
                        update_pct: pct,
                        seed: 0x5CA1E,
                    };
                    rw_scale_cell(scheme, h, shard_bits, 0.7, cfg, t).ok().map(|p| p.mops)
                })
                .collect();
            rw.push(Series::new(scheme.label(h), vals));
        }
        emit(&rw, args.csv);
    }

    // Speedup summary: the headline number of the experiment, read off
    // the already-measured curve (sweep[0] == 1, last == max_threads).
    if sweep.len() > 1 {
        println!("lookup speedup at {max_threads} threads vs 1 (same table, same probes):");
        for (label, curve) in &lookup_curves {
            let (one, many) = (curve[0], curve[curve.len() - 1]);
            println!("  {label:<16} {:>5.2}x", many / one);
        }
    }
}
