//! Latency tails of growing tables: stop-the-world vs incremental rehash.
//!
//! ```text
//! cargo run --release -p bench --bin growth_tail -- --scale default
//! ```
//!
//! The paper's §6 read-write experiment reports *mean* throughput of
//! growing tables — a lens that cannot see the growth stalls at all: one
//! stop-the-world rehash of millions of entries moves a 10⁶-op mean by a
//! rounding error while stalling one unlucky insert for tens of
//! milliseconds. This binary runs the same growing RW stream (update-heavy
//! so the table doubles several times, sized so the final generation is
//! out of cache) under [`GrowthPolicy::AllAtOnce`] and
//! [`GrowthPolicy::Incremental`] and reports what the mean hides:
//!
//! * **growth-phase insert latency** (p50/p99/max): inserts that paid for
//!   growth — the rehash-triggering insert under AllAtOnce, every insert
//!   executed while a migration was in flight under Incremental;
//! * **all-insert latency** (p99/max): the tail of the whole stream;
//! * **throughput**: total ops over wall clock — the cost of draining a
//!   bounded number of old-generation entries per operation, which should
//!   stay within a few percent of the stop-the-world run.
//!
//! Per-op latencies are recorded with [`metrics::LatencyHistogram`]
//! (log-linear buckets, ≤ 12.5% error). The stream executes through the
//! single-key API: per-op latency needs per-op boundaries.

use bench::{emit, parse_args, HashId, Scheme};
use metrics::{LatencyHistogram, ReportTable, Series, Throughput};
use sevendim_core::{DynamicTable, GrowthPolicy, HashTable, TableBuilder};
use workloads::{
    rw::{run_chunk_instrumented, RwStream},
    RwConfig,
};

const GROW_THRESHOLD: f64 = 0.7;

/// Policies compared: the paper's stop-the-world model and two drain
/// rates (a small step bounds each op tightly; a larger one amortizes
/// the per-op bookkeeping better).
const POLICIES: [(&str, GrowthPolicy); 3] = [
    ("AllAtOnce", GrowthPolicy::AllAtOnce),
    ("Incr(step=8)", GrowthPolicy::Incremental { step: 8 }),
    ("Incr(step=64)", GrowthPolicy::Incremental { step: 64 }),
];

const TABLES: [(Scheme, HashId); 2] = [(Scheme::LP, HashId::Mult), (Scheme::RH, HashId::Mult)];

struct CellOut {
    growth: LatencyHistogram,
    all_inserts: LatencyHistogram,
    mops: f64,
    rehashes: usize,
    final_capacity: usize,
}

/// Run one growing RW stream through
/// [`run_chunk_instrumented`], classifying each insert as growth-phase
/// when a rehash fired during it or a migration is in flight after it.
fn run_cell(scheme: Scheme, h: HashId, policy: GrowthPolicy, cfg: RwConfig) -> CellOut {
    // Initial size: smallest power of two keeping the initial load under
    // the growth threshold (the rule `rw_cell` uses).
    let mut bits = 10u8;
    while (cfg.initial_keys as f64) > GROW_THRESHOLD * (1u64 << bits) as f64 {
        bits += 1;
    }
    let factory = TableBuilder::new(scheme.table_scheme()).hash(h.hash_kind());
    let mut table =
        DynamicTable::with_policy(factory, bits, cfg.seed ^ 0xD14_7AB1E, GROW_THRESHOLD, policy);
    let mut stream = RwStream::new(cfg);
    for k in stream.initial_keys() {
        table.insert(k, k).expect("prepopulation failed");
    }
    let mut growth = LatencyHistogram::new();
    let mut all_inserts = LatencyHistogram::new();
    let mut last_rehashes = table.rehash_count();
    let mut total: Option<Throughput> = None;
    const CHUNK: usize = 1 << 13;
    while let Some(chunk) = stream.next_chunk(CHUNK) {
        let t = run_chunk_instrumented(&mut table, &chunk, |table, nanos| {
            all_inserts.record(nanos);
            if table.is_migrating() || table.rehash_count() != last_rehashes {
                growth.record(nanos);
            }
            last_rehashes = table.rehash_count();
        })
        .expect("RW stream failed");
        total = Some(match total {
            None => t,
            Some(acc) => acc.merge(&t),
        });
    }
    CellOut {
        growth,
        all_inserts,
        mops: total.map(|t| t.m_ops_per_sec()).unwrap_or(0.0),
        rehashes: table.rehash_count(),
        final_capacity: table.capacity(),
    }
}

fn micros(nanos: u64) -> f64 {
    nanos as f64 / 1e3
}

fn main() {
    let args = parse_args(std::env::args());
    let cfg = RwConfig {
        initial_keys: args.scale.rw_initial_keys(),
        operations: args.op_count(),
        // Update-heavy (inserts:deletes = 4:1, no lookups): the stream
        // that actually grows the table.
        update_pct: 100,
        seed: 0x9077,
    };
    println!(
        "Growth-tail comparison — RW stream of {} ops over {} initial keys, \
         growing at {:.0}% (threshold), 100% updates\n",
        cfg.operations,
        cfg.initial_keys,
        GROW_THRESHOLD * 100.0
    );

    let ticks: Vec<String> = ["growth p50", "growth p99", "growth max", "all p99", "all max"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for &(scheme, h) in &TABLES {
        let mut panel = ReportTable::new(
            format!("growth_tail — {} insert latency", scheme.label(h)),
            "policy",
            ticks.clone(),
            "µs",
        );
        let mut tp = ReportTable::new(
            format!("growth_tail — {} stream throughput", scheme.label(h)),
            "policy",
            vec!["M ops/s".into(), "rehashes".into(), "final slots".into()],
            "mixed",
        );
        let mut headline: Vec<(String, u64, f64)> = Vec::new();
        for &(name, policy) in &POLICIES {
            let out = run_cell(scheme, h, policy, cfg);
            panel.push(Series::new(
                name,
                vec![
                    Some(micros(out.growth.p50())),
                    Some(micros(out.growth.p99())),
                    Some(micros(out.growth.max_nanos())),
                    Some(micros(out.all_inserts.p99())),
                    Some(micros(out.all_inserts.max_nanos())),
                ],
            ));
            tp.push(Series::new(
                name,
                vec![Some(out.mops), Some(out.rehashes as f64), Some(out.final_capacity as f64)],
            ));
            headline.push((name.to_string(), out.growth.p99(), out.mops));
        }
        emit(&panel, args.csv);
        emit(&tp, args.csv);
        // The acceptance numbers: growth-phase p99 ratio and throughput
        // ratio of each incremental policy against stop-the-world.
        let (_, aao_p99, aao_mops) = headline[0].clone();
        for (name, p99, mops) in headline.iter().skip(1) {
            let ratio = if *p99 > 0 { aao_p99 as f64 / *p99 as f64 } else { f64::INFINITY };
            println!(
                "{}: growth-phase p99 {:.1}x lower than AllAtOnce, throughput {:.1}% of AllAtOnce",
                name,
                ratio,
                100.0 * mops / aao_mops
            );
        }
        println!();
    }
}
