//! Figure 3: memory footprint of the Figure 2 tables.
//!
//! Memory usage under the dense distribution (the one producing the
//! largest differences between hash tables, per the paper's caption) at
//! load factors 25/35/45%. LP's footprint is constant — the directory
//! alone; the chained variants pay per-entry and per-collision costs that
//! depend on the hash function's collision behaviour, which is the
//! figure's point: ChainedH24's footprint under Mult drops visibly on
//! dense keys because Mult produces almost no collisions there.

use bench::{emit, parse_args, worm_cell, HashId, Scheme};
use metrics::{bytes_to_mb, ReportTable, Series};
use workloads::{Distribution, WormConfig};

const LOAD_FACTORS: [f64; 3] = [0.25, 0.35, 0.45];
const TABLES: [(Scheme, HashId); 6] = [
    (Scheme::Chained8, HashId::Mult),
    (Scheme::Chained8, HashId::Murmur),
    (Scheme::Chained24, HashId::Mult),
    (Scheme::Chained24, HashId::Murmur),
    (Scheme::LP, HashId::Mult),
    (Scheme::LP, HashId::Murmur),
];

fn main() {
    let mut args = parse_args(std::env::args());
    // Footprint is a property of the built table, not of probe streams:
    // keep the probe phase minimal.
    args.probes = Some(args.probes.unwrap_or(1000).min(1000));
    let (_, _, large) = args.scale.capacity_bits();
    let bits = args.log2_capacity.unwrap_or(large);
    let seeds = args.seed_list();
    println!("Figure 3 — memory footprint, capacity 2^{bits}\n");

    for dist in Distribution::ALL {
        let mut panel = ReportTable::new(
            format!("Fig 3 — {} distribution — memory usage", dist.name()),
            "load factor %",
            LOAD_FACTORS.iter().map(|lf| format!("{:.0}", lf * 100.0)).collect(),
            "MB",
        );
        for &(scheme, h) in &TABLES {
            let values = LOAD_FACTORS
                .iter()
                .map(|&lf| {
                    let cfg = WormConfig {
                        capacity_bits: bits,
                        load_factor: lf,
                        dist,
                        probes: args.probe_count(),
                        seed: 0,
                    };
                    worm_cell(scheme, h, &cfg, &seeds[..1]).memory_bytes.map(bytes_to_mb)
                })
                .collect();
            panel.push(Series::new(scheme.label(h), values));
        }
        emit(&panel, args.csv);
        if dist == Distribution::Dense {
            println!(
                "(paper shows dense only: it produces the largest footprint \
                 differences; sparse/grid follow for completeness)\n"
            );
        }
    }
}
