//! Load generator for the networked KV service.
//!
//! ```text
//! cargo run --release -p bench --bin kv_loadgen -- --scale smoke --json
//! ```
//!
//! Spawns an in-process `KvServer` (or targets `--addr host:port`),
//! then drives it from `--conns` client threads, each keeping
//! `--pipeline` requests in flight over one socket. Two panels:
//!
//! * **get** — 100% `GET` over a preloaded key space (every lookup
//!   hits), the panel that shows how far wire pipelining carries the
//!   table's batched probe kernels;
//! * **mixed** — `--get-ratio`% `GET` / rest `PUT` over the same keys,
//!   the service-shaped analogue of the paper's RW mix.
//!
//! Arrival is **open-loop** when `--rate` is set: each request has a
//! scheduled arrival time on a fixed grid and its latency is measured
//! from that *schedule*, not from the send — a stalled server makes
//! queued requests' latencies grow, instead of silently slowing the
//! arrival rate (coordinated omission). `--rate 0` (default) is closed
//! loop: the pipeline refills as responses return and latency is
//! measured from enqueue.
//!
//! Per-worker latencies land in private `LatencyHistogram`s and are
//! merged for reporting (`LatencyHistogram::merged` — identical to one
//! histogram recording every sample). `--json` additionally writes
//! `BENCH_net.json` (schema v3: stamped with `schema_version`,
//! `server_threads`, `accept_mode`, and `warmup_ops`) for trend
//! tracking.
//!
//! Every measured window is preceded by an **untimed warm-up**: the
//! preload plus a few thousand throwaway ops in the measured panel's
//! own shape (same connections, pipeline depth, and mix), so first-use
//! costs — connection setup, buffer allocation, table page faults,
//! branch warm-up in the event loop — land outside the clock. Fresh
//! servers (the main run and every sweep point) each get their own
//! warm-up; without it the sweep's low-thread points carried the whole
//! cold start and the scaling curve was skewed. The server's own op
//! counter cross-checks the bookkeeping at shutdown: the sum of
//! preload, warm-up, and panel ops must account for every op served,
//! proving the measured panels counted only their own windows.
//!
//! `--server-threads N` sets the in-process server's worker count
//! (default: one per core) and the ceiling of the **thread sweep
//! panel**: the GET workload re-run against fresh servers at 1, 2, 4, …
//! worker threads, charting how throughput scales as more cores run
//! the seqlock read path. On a 1-core host the sweep still prints (the
//! curve is flat there — correctness, not scaling) with the same
//! caveat `scale_threads` uses.

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("kv_loadgen needs Linux (the server is epoll-based)");
    std::process::exit(2);
}

#[cfg(target_os = "linux")]
fn main() {
    linux::main()
}

#[cfg(target_os = "linux")]
mod linux {
    use metrics::LatencyHistogram;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sevendim_core::{ConcurrentTable, TableBuilder, TableScheme};
    use sevendim_net::protocol::{Op, Request};
    use sevendim_net::{AcceptMode, KvClient, KvServer, ServerHandle};
    use std::collections::VecDeque;
    use std::io::Write as _;
    use std::net::SocketAddr;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Most client connections (threads) the generator will drive; more
    /// is a config error, not a bigger benchmark.
    const MAX_CONNS: usize = 1024;

    /// Deepest per-connection pipeline. Past a few thousand in-flight
    /// frames the client's deferred `recv` can deadlock against the
    /// server's write-side backpressure (both socket buffers full, the
    /// server paused on `WBUF_HIGH`, the client blocked in `flush`) —
    /// reject the config instead of hanging.
    const MAX_PIPELINE: usize = 4096;

    /// Sanity ceiling for `--server-threads` (the sweep spawns a fresh
    /// server per point).
    const MAX_SERVER_THREADS: usize = 256;

    /// Untimed throwaway ops per connection before each measured
    /// window. A thousand per connection is enough to fault in the
    /// client/server buffers and run every event-loop path a few
    /// hundred times; it is deliberately *not* scaled with `--ops` so
    /// smoke runs stay quick.
    const WARMUP_OPS_PER_CONN: usize = 1000;

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Scale {
        Smoke,
        Default,
        Paper,
    }

    struct Args {
        scale: Scale,
        conns: Option<usize>,
        pipeline: Option<usize>,
        ops: Option<usize>,
        keys: Option<usize>,
        /// GET percentage of the mixed panel, 0..=100.
        get_ratio: u32,
        /// Open-loop arrival rate in ops/s across all connections
        /// (0 = closed loop).
        rate: u64,
        /// Worker event loops for the in-process server (None = one per
        /// core) and the ceiling of the thread-sweep panel.
        server_threads: Option<usize>,
        accept: AcceptMode,
        json: bool,
        addr: Option<String>,
    }

    impl Args {
        fn conns(&self) -> usize {
            self.conns.unwrap_or(match self.scale {
                Scale::Smoke => 2,
                Scale::Default => 4,
                Scale::Paper => 16,
            })
        }

        fn pipeline(&self) -> usize {
            self.pipeline.unwrap_or(match self.scale {
                Scale::Smoke => 16,
                Scale::Default => 64,
                Scale::Paper => 128,
            })
        }

        /// Resolved server worker count: the flag, or one per core.
        fn server_threads(&self) -> usize {
            self.server_threads.unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
        }

        fn ops(&self) -> usize {
            self.ops.unwrap_or(match self.scale {
                Scale::Smoke => 40_000,
                Scale::Default => 400_000,
                Scale::Paper => 10_000_000,
            })
        }

        fn keys(&self) -> usize {
            self.keys
                .unwrap_or(match self.scale {
                    Scale::Smoke => 10_000,
                    Scale::Default => 100_000,
                    Scale::Paper => 1_000_000,
                })
                .max(1)
        }
    }

    fn parse_args(argv: impl IntoIterator<Item = String>) -> Args {
        let mut args = Args {
            scale: Scale::Default,
            conns: None,
            pipeline: None,
            ops: None,
            keys: None,
            get_ratio: 80,
            rate: 0,
            server_threads: None,
            accept: AcceptMode::Auto,
            json: false,
            addr: None,
        };
        let mut it = argv.into_iter();
        let _bin = it.next();
        while let Some(flag) = it.next() {
            let mut value_for =
                |flag: &str| it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
            match flag.as_str() {
                "--scale" => {
                    args.scale = match value_for("--scale").as_str() {
                        "smoke" => Scale::Smoke,
                        "default" => Scale::Default,
                        "paper" => Scale::Paper,
                        v => usage(&format!("unknown scale '{v}'")),
                    }
                }
                "--conns" => args.conns = Some(parse_num(&value_for("--conns"), "--conns")),
                "--pipeline" => {
                    args.pipeline = Some(parse_num(&value_for("--pipeline"), "--pipeline"))
                }
                "--ops" => args.ops = Some(parse_num(&value_for("--ops"), "--ops")),
                "--keys" => args.keys = Some(parse_num(&value_for("--keys"), "--keys")),
                "--get-ratio" => {
                    let r = parse_num(&value_for("--get-ratio"), "--get-ratio");
                    if r > 100 {
                        usage("--get-ratio is a percentage (0..=100)");
                    }
                    args.get_ratio = r as u32;
                }
                "--rate" => args.rate = parse_num(&value_for("--rate"), "--rate") as u64,
                "--server-threads" => {
                    args.server_threads =
                        Some(parse_num(&value_for("--server-threads"), "--server-threads"))
                }
                "--accept" => {
                    args.accept = match value_for("--accept").as_str() {
                        "auto" => AcceptMode::Auto,
                        "reuseport" => AcceptMode::ReusePort,
                        "mailbox" => AcceptMode::Mailbox,
                        v => usage(&format!("unknown accept mode '{v}'")),
                    }
                }
                "--json" => args.json = true,
                "--addr" => args.addr = Some(value_for("--addr")),
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        validate(&args);
        args
    }

    /// Reject configs that would hang or thrash instead of measuring:
    /// zero connections or pipeline depth never make progress, an
    /// oversized pipeline deadlocks against server backpressure, and an
    /// absurd rate cannot be scheduled on a nanosecond grid.
    fn validate(args: &Args) {
        if let Some(c) = args.conns {
            if c == 0 {
                usage("--conns must be >= 1 (zero connections generate no load)");
            }
            if c > MAX_CONNS {
                usage(&format!("--conns must be <= {MAX_CONNS} (one thread per connection)"));
            }
        }
        if let Some(p) = args.pipeline {
            if p == 0 {
                usage("--pipeline must be >= 1 (an empty pipeline never completes)");
            }
            if p > MAX_PIPELINE {
                usage(&format!(
                    "--pipeline must be <= {MAX_PIPELINE} (deeper deadlocks against \
                     server write backpressure)"
                ));
            }
        }
        if let Some(o) = args.ops {
            if o == 0 {
                usage("--ops must be >= 1");
            }
        }
        if let Some(t) = args.server_threads {
            if t == 0 || t > MAX_SERVER_THREADS {
                usage(&format!("--server-threads must be in 1..={MAX_SERVER_THREADS}"));
            }
        }
        if (1_000_000_000u64 * args.conns() as u64).checked_div(args.rate) == Some(0) {
            usage("--rate too high: per-connection arrival interval rounds to 0 ns");
        }
    }

    fn parse_num(v: &str, flag: &str) -> usize {
        v.parse().unwrap_or_else(|_| usage(&format!("{flag} must be an integer")))
    }

    fn usage(err: &str) -> ! {
        if !err.is_empty() {
            eprintln!("error: {err}");
        }
        eprintln!(
            "usage: kv_loadgen [--scale smoke|default|paper] [--conns N] [--pipeline N] \
             [--ops N] [--keys N] [--get-ratio PCT] [--rate OPS_PER_SEC] \
             [--server-threads N] [--accept auto|reuseport|mailbox] [--addr HOST:PORT] \
             [--json]"
        );
        std::process::exit(if err.is_empty() { 0 } else { 2 })
    }

    fn accept_name(mode: AcceptMode) -> &'static str {
        match mode {
            AcceptMode::Auto => "auto",
            AcceptMode::ReusePort => "reuseport",
            AcceptMode::Mailbox => "mailbox",
        }
    }

    struct PanelResult {
        name: &'static str,
        ops: u64,
        elapsed: Duration,
        hist: LatencyHistogram,
    }

    impl PanelResult {
        fn mops(&self) -> f64 {
            self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
        }
    }

    /// One worker: a windowed pipeline of `depth` requests over one
    /// connection, with open-loop scheduling when `interval_ns > 0`.
    fn worker(
        addr: SocketAddr,
        ops: usize,
        depth: usize,
        keys: u64,
        get_ratio: u32,
        interval_ns: u64,
        seed: u64,
    ) -> std::io::Result<LatencyHistogram> {
        let mut client = KvClient::connect(addr)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hist = LatencyHistogram::new();
        let mut inflight: VecDeque<(u64, u64)> = VecDeque::with_capacity(depth); // (id, sched_ns)
        let start = Instant::now();
        for i in 0..ops {
            // Open loop: request i is *due* at i·interval regardless of
            // server progress; if we're early, wait for the schedule.
            let sched_ns = i as u64 * interval_ns;
            if interval_ns > 0 {
                let now = start.elapsed().as_nanos() as u64;
                if sched_ns > now {
                    std::thread::sleep(Duration::from_nanos(sched_ns - now));
                }
            }
            if inflight.len() >= depth {
                client.flush()?;
                let (id, sched) = inflight.pop_front().expect("inflight is non-empty");
                let (got, _resp) = client.recv()?;
                debug_assert_eq!(got, id, "server answers FIFO");
                hist.record(start.elapsed().as_nanos() as u64 - sched);
            }
            let key = rng.gen_range(0..keys);
            let req = if rng.gen_range(0..100u32) < get_ratio {
                Request::Get(key)
            } else {
                Request::Put(key, i as u64)
            };
            let sched = if interval_ns > 0 { sched_ns } else { start.elapsed().as_nanos() as u64 };
            let id = client.enqueue(&req);
            inflight.push_back((id, sched));
        }
        client.flush()?;
        while let Some((id, sched)) = inflight.pop_front() {
            let (got, _resp) = client.recv()?;
            debug_assert_eq!(got, id, "server answers FIFO");
            hist.record(start.elapsed().as_nanos() as u64 - sched);
        }
        Ok(hist)
    }

    fn run_panel(
        name: &'static str,
        addr: SocketAddr,
        args: &Args,
        get_ratio: u32,
        total_ops: usize,
        rate: u64,
    ) -> PanelResult {
        let conns = args.conns();
        let per_worker = total_ops.div_ceil(conns);
        let keys = args.keys() as u64;
        let depth = args.pipeline();
        // The global arrival rate splits evenly across connections.
        let interval_ns = (1_000_000_000u64 * conns as u64).checked_div(rate).unwrap_or(0);
        let start = Instant::now();
        let workers: Vec<_> = (0..conns)
            .map(|w| {
                std::thread::spawn(move || {
                    worker(
                        addr,
                        per_worker,
                        depth,
                        keys,
                        get_ratio,
                        interval_ns,
                        0xC0FFEE + w as u64,
                    )
                })
            })
            .collect();
        let hists: Vec<LatencyHistogram> = workers
            .into_iter()
            .map(|h| h.join().expect("worker panicked").expect("worker I/O failed"))
            .collect();
        let elapsed = start.elapsed();
        PanelResult {
            name,
            ops: (per_worker * conns) as u64,
            elapsed,
            hist: LatencyHistogram::merged(&hists),
        }
    }

    /// The untimed warm-up burst: the measured panels' own shape (same
    /// connections, pipeline depth, and mixed GET/PUT ratio), result
    /// thrown away. Returns the op count it issued so the shutdown
    /// accounting can prove it stayed outside every measured window.
    fn warmup(addr: SocketAddr, args: &Args) -> u64 {
        let total = args.conns() * WARMUP_OPS_PER_CONN;
        // Always closed loop: the warm-up exists to exercise code paths,
        // not to honor the measured panels' arrival schedule.
        run_panel("warmup", addr, args, args.get_ratio, total, 0).ops
    }

    /// Preload every key so the GET panel always hits, using `BATCH`
    /// frames (also warms the server's batch path).
    fn preload(addr: SocketAddr, keys: u64) -> std::io::Result<()> {
        let mut client = KvClient::connect(addr)?;
        let mut ops = Vec::with_capacity(1024);
        for chunk_start in (0..keys).step_by(1024) {
            ops.clear();
            for k in chunk_start..(chunk_start + 1024).min(keys) {
                ops.push(Op::Put(k, k.wrapping_mul(3)));
            }
            let results = client.batch(&ops)?;
            assert_eq!(results.len(), ops.len(), "preload batch answered fully");
        }
        Ok(())
    }

    fn fmt_us(nanos: u64) -> String {
        format!("{:.1}", nanos as f64 / 1000.0)
    }

    /// A fresh in-process server for `args`' workload: LP × Mult sharded
    /// table sized to hold the key space at <= 70% load, optimistic
    /// reads on (the GET panels should take the seqlock path), `threads`
    /// worker event loops.
    fn spawn_server(args: &Args, threads: usize) -> ServerHandle {
        let keys = args.keys();
        let slots = (keys as f64 / 0.7).ceil() as usize;
        let bits = (slots.next_power_of_two().trailing_zeros() as u8).max(8);
        let table = TableBuilder::new(TableScheme::LinearProbing)
            .bits(bits)
            .concurrency(args.conns().max(threads))
            .optimistic_reads(true)
            .build_sharded();
        let table: Arc<dyn ConcurrentTable> = Arc::new(table);
        KvServer::builder()
            .threads(threads)
            .accept(args.accept)
            .spawn("127.0.0.1:0", table)
            .expect("spawn server")
    }

    struct SweepPoint {
        threads: usize,
        mops: f64,
        p50_ns: u64,
        p99_ns: u64,
    }

    /// Worker counts for the sweep: 1, 2, 4, … up to `max`, always
    /// including `max` itself. At least two points even on a 1-core
    /// host, so the panel exists everywhere (flat curve = correctness
    /// evidence, not scaling evidence).
    fn sweep_points(max: usize) -> Vec<usize> {
        let top = max.max(2);
        let mut points = Vec::new();
        let mut t = 1;
        while t < top {
            points.push(t);
            t *= 2;
        }
        points.push(top);
        points
    }

    /// The thread-sweep panel: the GET workload re-run against a fresh
    /// server (own table, own preload) per worker count. Skipped when
    /// `--addr` targets an external server we can't respawn.
    fn run_sweep(args: &Args) -> Vec<SweepPoint> {
        let keys = args.keys() as u64;
        sweep_points(args.server_threads())
            .into_iter()
            .map(|threads| {
                let handle = spawn_server(args, threads);
                preload(handle.addr(), keys).expect("sweep preload");
                // Untimed warm-up per point: each fresh server pays its
                // cold start *before* its measured window, so the
                // low-thread points no longer carry setup skew.
                let warmed = warmup(handle.addr(), args);
                let panel = run_panel("get", handle.addr(), args, 100, args.ops(), args.rate);
                let stats = handle.shutdown().expect("sweep server shutdown");
                assert_eq!(stats.protocol_closes, 0, "loadgen speaks the protocol");
                assert_eq!(
                    stats.ops,
                    keys + warmed + panel.ops,
                    "sweep point at {threads} threads: measured window op accounting"
                );
                SweepPoint {
                    threads,
                    mops: panel.mops(),
                    p50_ns: panel.hist.p50(),
                    p99_ns: panel.hist.p99(),
                }
            })
            .collect()
    }

    /// Open file descriptors of this process, for the leak check: after
    /// every server and client is shut down the count must return to
    /// its startup value (worker epolls, wake pipes, listeners, and
    /// accepted sockets all closed).
    fn count_fds() -> usize {
        std::fs::read_dir("/proc/self/fd").map(|d| d.count()).unwrap_or(0)
    }

    pub fn main() {
        let fds_at_start = count_fds();
        let args = parse_args(std::env::args());
        let keys = args.keys();

        // In-process server unless --addr points elsewhere.
        let mut server = None;
        let addr: SocketAddr = match &args.addr {
            Some(a) => a.parse().unwrap_or_else(|_| usage("--addr must be HOST:PORT")),
            None => {
                let handle = spawn_server(&args, args.server_threads());
                let a = handle.addr();
                server = Some(handle);
                a
            }
        };

        // The accept path the server actually resolved to (Auto becomes
        // reuseport or mailbox at spawn); external targets report the
        // flag as requested since we can't introspect them.
        let resolved_accept =
            server.as_ref().map_or(args.accept, sevendim_net::ServerHandle::accept_mode);

        println!(
            "kv_loadgen — {} conns × pipeline {}, {} ops/panel, {} keys, {}, \
             {} server threads ({} accept)",
            args.conns(),
            args.pipeline(),
            args.ops(),
            keys,
            if args.rate == 0 {
                "closed loop".to_string()
            } else {
                format!("open loop at {} ops/s", args.rate)
            },
            args.server_threads(),
            accept_name(resolved_accept),
        );

        preload(addr, keys as u64).expect("preload");
        let warmed = warmup(addr, &args);

        let panels = [
            run_panel("get", addr, &args, 100, args.ops(), args.rate),
            run_panel("mixed", addr, &args, args.get_ratio, args.ops(), args.rate),
        ];

        println!(
            "\n{:<8} {:>10} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "panel", "ops", "M ops/s", "mean us", "p50 us", "p99 us", "max us"
        );
        for p in &panels {
            println!(
                "{:<8} {:>10} {:>8.2} {:>10} {:>10} {:>10} {:>10}",
                p.name,
                p.ops,
                p.mops(),
                format!("{:.1}", p.hist.mean_nanos() / 1000.0),
                fmt_us(p.hist.p50()),
                fmt_us(p.hist.p99()),
                fmt_us(p.hist.max_nanos()),
            );
        }

        // The main in-process server is done before the sweep spawns its
        // own; an external --addr server can't be respawned per point,
        // so the sweep is skipped there.
        if let Some(handle) = server.take() {
            let stats = handle.shutdown().expect("server shutdown");
            assert_eq!(stats.protocol_closes, 0, "loadgen speaks the protocol");
            // Regression guard for the warm-up fix: the server's total
            // op count must be exactly preload + warm-up + the two
            // measured panels — the panels counted nothing but their
            // own windows, and the warm-up stayed outside them.
            let measured: u64 = panels.iter().map(|p| p.ops).sum();
            assert_eq!(
                stats.ops,
                keys as u64 + warmed + measured,
                "measured window op accounting (preload {keys} + warmup {warmed} + panels)"
            );
            println!(
                "clean shutdown: {} conns, {} frames, {} ops served \
                 ({} preload + {} warmup + {} measured)",
                stats.accepted, stats.frames, stats.ops, keys, warmed, measured
            );
        }

        let sweep = if args.addr.is_none() { run_sweep(&args) } else { Vec::new() };
        if !sweep.is_empty() {
            let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            println!("\nserver-thread sweep — GET panel, {} accept:", accept_name(resolved_accept));
            println!(
                "{:<8} {:>8} {:>8} {:>10} {:>10}",
                "threads", "M ops/s", "speedup", "p50 us", "p99 us"
            );
            let base = sweep[0].mops;
            for pt in &sweep {
                println!(
                    "{:<8} {:>8.2} {:>7.2}x {:>10} {:>10}",
                    pt.threads,
                    pt.mops,
                    if base > 0.0 { pt.mops / base } else { 0.0 },
                    fmt_us(pt.p50_ns),
                    fmt_us(pt.p99_ns),
                );
            }
            let top = sweep.last().expect("sweep is non-empty").threads;
            if cores < top {
                println!(
                    "(host has {cores} core(s) — points above {cores} threads oversubscribe \
                     and show correctness, not scaling)"
                );
            }
        }

        if args.json {
            let mut out =
                String::from("{\n  \"bench\": \"kv_loadgen\",\n  \"schema_version\": 3,\n");
            out.push_str(&format!(
                "  \"conns\": {}, \"pipeline\": {}, \"keys\": {}, \"rate\": {},\n  \
                 \"server_threads\": {}, \"accept_mode\": \"{}\", \"warmup_ops\": {},\n  \
                 \"panels\": [\n",
                args.conns(),
                args.pipeline(),
                keys,
                args.rate,
                args.server_threads(),
                accept_name(resolved_accept),
                warmed,
            ));
            for (i, p) in panels.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"ops\": {}, \"secs\": {:.6}, \"mops\": {:.4}, \
                     \"mean_ns\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
                    p.name,
                    p.ops,
                    p.elapsed.as_secs_f64(),
                    p.mops(),
                    p.hist.mean_nanos(),
                    p.hist.p50(),
                    p.hist.p99(),
                    p.hist.max_nanos(),
                    if i + 1 < panels.len() { "," } else { "" },
                ));
            }
            out.push_str("  ],\n  \"sweep\": [\n");
            for (i, pt) in sweep.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"threads\": {}, \"mops\": {:.4}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
                    pt.threads,
                    pt.mops,
                    pt.p50_ns,
                    pt.p99_ns,
                    if i + 1 < sweep.len() { "," } else { "" },
                ));
            }
            out.push_str("  ]\n}\n");
            let mut f = std::fs::File::create("BENCH_net.json").expect("create BENCH_net.json");
            f.write_all(out.as_bytes()).expect("write BENCH_net.json");
            println!("\nwrote BENCH_net.json");
        }

        // Every worker thread has joined by now; any fd delta is a leak
        // in the server/client lifecycle.
        let fds_at_end = count_fds();
        assert_eq!(fds_at_end, fds_at_start, "file descriptors leaked across server lifecycles");
        println!("no leaked fds ({fds_at_end} open, same as at startup)");
    }
}
