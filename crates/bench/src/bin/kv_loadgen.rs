//! Load generator for the networked KV service.
//!
//! ```text
//! cargo run --release -p bench --bin kv_loadgen -- --scale smoke --json
//! ```
//!
//! Spawns an in-process `KvServer` (or targets `--addr host:port`),
//! then drives it from `--conns` client threads, each keeping
//! `--pipeline` requests in flight over one socket. Two panels:
//!
//! * **get** — 100% `GET` over a preloaded key space (every lookup
//!   hits), the panel that shows how far wire pipelining carries the
//!   table's batched probe kernels;
//! * **mixed** — `--get-ratio`% `GET` / rest `PUT` over the same keys,
//!   the service-shaped analogue of the paper's RW mix.
//!
//! Arrival is **open-loop** when `--rate` is set: each request has a
//! scheduled arrival time on a fixed grid and its latency is measured
//! from that *schedule*, not from the send — a stalled server makes
//! queued requests' latencies grow, instead of silently slowing the
//! arrival rate (coordinated omission). `--rate 0` (default) is closed
//! loop: the pipeline refills as responses return and latency is
//! measured from enqueue.
//!
//! Per-worker latencies land in private `LatencyHistogram`s and are
//! merged for reporting (`LatencyHistogram::merged` — identical to one
//! histogram recording every sample). `--json` additionally writes
//! `BENCH_net.json` for trend tracking.

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("kv_loadgen needs Linux (the server is epoll-based)");
    std::process::exit(2);
}

#[cfg(target_os = "linux")]
fn main() {
    linux::main()
}

#[cfg(target_os = "linux")]
mod linux {
    use metrics::LatencyHistogram;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sevendim_core::{ConcurrentTable, TableBuilder, TableScheme};
    use sevendim_net::protocol::{Op, Request};
    use sevendim_net::{KvClient, KvServer};
    use std::collections::VecDeque;
    use std::io::Write as _;
    use std::net::SocketAddr;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Scale {
        Smoke,
        Default,
        Paper,
    }

    struct Args {
        scale: Scale,
        conns: Option<usize>,
        pipeline: Option<usize>,
        ops: Option<usize>,
        keys: Option<usize>,
        /// GET percentage of the mixed panel, 0..=100.
        get_ratio: u32,
        /// Open-loop arrival rate in ops/s across all connections
        /// (0 = closed loop).
        rate: u64,
        json: bool,
        addr: Option<String>,
    }

    impl Args {
        fn conns(&self) -> usize {
            self.conns.unwrap_or(match self.scale {
                Scale::Smoke => 2,
                Scale::Default => 4,
                Scale::Paper => 16,
            })
        }

        fn pipeline(&self) -> usize {
            self.pipeline
                .unwrap_or(match self.scale {
                    Scale::Smoke => 16,
                    Scale::Default => 64,
                    Scale::Paper => 128,
                })
                .max(1)
        }

        fn ops(&self) -> usize {
            self.ops.unwrap_or(match self.scale {
                Scale::Smoke => 40_000,
                Scale::Default => 400_000,
                Scale::Paper => 10_000_000,
            })
        }

        fn keys(&self) -> usize {
            self.keys
                .unwrap_or(match self.scale {
                    Scale::Smoke => 10_000,
                    Scale::Default => 100_000,
                    Scale::Paper => 1_000_000,
                })
                .max(1)
        }
    }

    fn parse_args(argv: impl IntoIterator<Item = String>) -> Args {
        let mut args = Args {
            scale: Scale::Default,
            conns: None,
            pipeline: None,
            ops: None,
            keys: None,
            get_ratio: 80,
            rate: 0,
            json: false,
            addr: None,
        };
        let mut it = argv.into_iter();
        let _bin = it.next();
        while let Some(flag) = it.next() {
            let mut value_for =
                |flag: &str| it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
            match flag.as_str() {
                "--scale" => {
                    args.scale = match value_for("--scale").as_str() {
                        "smoke" => Scale::Smoke,
                        "default" => Scale::Default,
                        "paper" => Scale::Paper,
                        v => usage(&format!("unknown scale '{v}'")),
                    }
                }
                "--conns" => args.conns = Some(parse_num(&value_for("--conns"), "--conns")),
                "--pipeline" => {
                    args.pipeline = Some(parse_num(&value_for("--pipeline"), "--pipeline"))
                }
                "--ops" => args.ops = Some(parse_num(&value_for("--ops"), "--ops")),
                "--keys" => args.keys = Some(parse_num(&value_for("--keys"), "--keys")),
                "--get-ratio" => {
                    let r = parse_num(&value_for("--get-ratio"), "--get-ratio");
                    if r > 100 {
                        usage("--get-ratio is a percentage (0..=100)");
                    }
                    args.get_ratio = r as u32;
                }
                "--rate" => args.rate = parse_num(&value_for("--rate"), "--rate") as u64,
                "--json" => args.json = true,
                "--addr" => args.addr = Some(value_for("--addr")),
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        args
    }

    fn parse_num(v: &str, flag: &str) -> usize {
        v.parse().unwrap_or_else(|_| usage(&format!("{flag} must be an integer")))
    }

    fn usage(err: &str) -> ! {
        if !err.is_empty() {
            eprintln!("error: {err}");
        }
        eprintln!(
            "usage: kv_loadgen [--scale smoke|default|paper] [--conns N] [--pipeline N] \
             [--ops N] [--keys N] [--get-ratio PCT] [--rate OPS_PER_SEC] [--addr HOST:PORT] \
             [--json]"
        );
        std::process::exit(if err.is_empty() { 0 } else { 2 })
    }

    struct PanelResult {
        name: &'static str,
        ops: u64,
        elapsed: Duration,
        hist: LatencyHistogram,
    }

    impl PanelResult {
        fn mops(&self) -> f64 {
            self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
        }
    }

    /// One worker: a windowed pipeline of `depth` requests over one
    /// connection, with open-loop scheduling when `interval_ns > 0`.
    fn worker(
        addr: SocketAddr,
        ops: usize,
        depth: usize,
        keys: u64,
        get_ratio: u32,
        interval_ns: u64,
        seed: u64,
    ) -> std::io::Result<LatencyHistogram> {
        let mut client = KvClient::connect(addr)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hist = LatencyHistogram::new();
        let mut inflight: VecDeque<(u64, u64)> = VecDeque::with_capacity(depth); // (id, sched_ns)
        let start = Instant::now();
        for i in 0..ops {
            // Open loop: request i is *due* at i·interval regardless of
            // server progress; if we're early, wait for the schedule.
            let sched_ns = i as u64 * interval_ns;
            if interval_ns > 0 {
                let now = start.elapsed().as_nanos() as u64;
                if sched_ns > now {
                    std::thread::sleep(Duration::from_nanos(sched_ns - now));
                }
            }
            if inflight.len() >= depth {
                client.flush()?;
                let (id, sched) = inflight.pop_front().expect("inflight is non-empty");
                let (got, _resp) = client.recv()?;
                debug_assert_eq!(got, id, "server answers FIFO");
                hist.record(start.elapsed().as_nanos() as u64 - sched);
            }
            let key = rng.gen_range(0..keys);
            let req = if rng.gen_range(0..100u32) < get_ratio {
                Request::Get(key)
            } else {
                Request::Put(key, i as u64)
            };
            let sched = if interval_ns > 0 { sched_ns } else { start.elapsed().as_nanos() as u64 };
            let id = client.enqueue(&req);
            inflight.push_back((id, sched));
        }
        client.flush()?;
        while let Some((id, sched)) = inflight.pop_front() {
            let (got, _resp) = client.recv()?;
            debug_assert_eq!(got, id, "server answers FIFO");
            hist.record(start.elapsed().as_nanos() as u64 - sched);
        }
        Ok(hist)
    }

    fn run_panel(name: &'static str, addr: SocketAddr, args: &Args, get_ratio: u32) -> PanelResult {
        let conns = args.conns();
        let total_ops = args.ops();
        let per_worker = total_ops.div_ceil(conns);
        let keys = args.keys() as u64;
        let depth = args.pipeline();
        // The global arrival rate splits evenly across connections.
        let interval_ns = (1_000_000_000u64 * conns as u64).checked_div(args.rate).unwrap_or(0);
        let start = Instant::now();
        let workers: Vec<_> = (0..conns)
            .map(|w| {
                std::thread::spawn(move || {
                    worker(
                        addr,
                        per_worker,
                        depth,
                        keys,
                        get_ratio,
                        interval_ns,
                        0xC0FFEE + w as u64,
                    )
                })
            })
            .collect();
        let hists: Vec<LatencyHistogram> = workers
            .into_iter()
            .map(|h| h.join().expect("worker panicked").expect("worker I/O failed"))
            .collect();
        let elapsed = start.elapsed();
        PanelResult {
            name,
            ops: (per_worker * conns) as u64,
            elapsed,
            hist: LatencyHistogram::merged(&hists),
        }
    }

    /// Preload every key so the GET panel always hits, using `BATCH`
    /// frames (also warms the server's batch path).
    fn preload(addr: SocketAddr, keys: u64) -> std::io::Result<()> {
        let mut client = KvClient::connect(addr)?;
        let mut ops = Vec::with_capacity(1024);
        for chunk_start in (0..keys).step_by(1024) {
            ops.clear();
            for k in chunk_start..(chunk_start + 1024).min(keys) {
                ops.push(Op::Put(k, k.wrapping_mul(3)));
            }
            let results = client.batch(&ops)?;
            assert_eq!(results.len(), ops.len(), "preload batch answered fully");
        }
        Ok(())
    }

    fn fmt_us(nanos: u64) -> String {
        format!("{:.1}", nanos as f64 / 1000.0)
    }

    pub fn main() {
        let args = parse_args(std::env::args());
        let keys = args.keys();

        // In-process server unless --addr points elsewhere: LP × Mult
        // sharded table sized to hold the key space at <= 70% load, with
        // optimistic reads on (the GET panel should take the seqlock
        // path).
        let mut server = None;
        let addr: SocketAddr = match &args.addr {
            Some(a) => a.parse().unwrap_or_else(|_| usage("--addr must be HOST:PORT")),
            None => {
                let slots = (keys as f64 / 0.7).ceil() as usize;
                let bits = (slots.next_power_of_two().trailing_zeros() as u8).max(8);
                let table = TableBuilder::new(TableScheme::LinearProbing)
                    .bits(bits)
                    .concurrency(args.conns())
                    .optimistic_reads(true)
                    .build_sharded();
                let table: Arc<dyn ConcurrentTable> = Arc::new(table);
                let handle = KvServer::spawn("127.0.0.1:0", table).expect("spawn server");
                let a = handle.addr();
                server = Some(handle);
                a
            }
        };

        println!(
            "kv_loadgen — {} conns × pipeline {}, {} ops/panel, {} keys, {}",
            args.conns(),
            args.pipeline(),
            args.ops(),
            keys,
            if args.rate == 0 {
                "closed loop".to_string()
            } else {
                format!("open loop at {} ops/s", args.rate)
            },
        );

        preload(addr, keys as u64).expect("preload");

        let panels =
            [run_panel("get", addr, &args, 100), run_panel("mixed", addr, &args, args.get_ratio)];

        println!(
            "\n{:<8} {:>10} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "panel", "ops", "M ops/s", "mean us", "p50 us", "p99 us", "max us"
        );
        for p in &panels {
            println!(
                "{:<8} {:>10} {:>8.2} {:>10} {:>10} {:>10} {:>10}",
                p.name,
                p.ops,
                p.mops(),
                format!("{:.1}", p.hist.mean_nanos() / 1000.0),
                fmt_us(p.hist.p50()),
                fmt_us(p.hist.p99()),
                fmt_us(p.hist.max_nanos()),
            );
        }

        if args.json {
            let mut out = String::from("{\n  \"bench\": \"kv_loadgen\",\n");
            out.push_str(&format!(
                "  \"conns\": {}, \"pipeline\": {}, \"keys\": {}, \"rate\": {},\n  \"panels\": [\n",
                args.conns(),
                args.pipeline(),
                keys,
                args.rate,
            ));
            for (i, p) in panels.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"ops\": {}, \"secs\": {:.6}, \"mops\": {:.4}, \
                     \"mean_ns\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
                    p.name,
                    p.ops,
                    p.elapsed.as_secs_f64(),
                    p.mops(),
                    p.hist.mean_nanos(),
                    p.hist.p50(),
                    p.hist.p99(),
                    p.hist.max_nanos(),
                    if i + 1 < panels.len() { "," } else { "" },
                ));
            }
            out.push_str("  ]\n}\n");
            let mut f = std::fs::File::create("BENCH_net.json").expect("create BENCH_net.json");
            f.write_all(out.as_bytes()).expect("write BENCH_net.json");
            println!("\nwrote BENCH_net.json");
        }

        if let Some(handle) = server.take() {
            let stats = handle.shutdown().expect("server shutdown");
            assert_eq!(stats.protocol_closes, 0, "loadgen speaks the protocol");
            println!(
                "clean shutdown: {} conns, {} frames, {} ops served",
                stats.accepted, stats.frames, stats.ops
            );
        }
    }
}
