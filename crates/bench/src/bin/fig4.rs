//! Figure 4: WORM at high load factors (50%, 70%, 90%), large capacity.
//!
//! All open-addressing schemes (LP, QP, RH, CuckooH4) with Mult and
//! Murmur; ChainedH24 participates only at 50% — beyond that it cannot
//! hold the keys within the §4.5 memory budget and its cells render as
//! `-`, mirroring its removal from the paper's panels.

use bench::{emit, parse_args, worm_cell, HashId, Scheme};
use metrics::{ReportTable, Series};
use workloads::{Distribution, WormConfig};

const LOAD_FACTORS: [f64; 3] = [0.50, 0.70, 0.90];
const TABLES: [(Scheme, HashId); 10] = [
    (Scheme::Chained24, HashId::Mult),
    (Scheme::Chained24, HashId::Murmur),
    (Scheme::Cuckoo4, HashId::Mult),
    (Scheme::Cuckoo4, HashId::Murmur),
    (Scheme::LP, HashId::Mult),
    (Scheme::LP, HashId::Murmur),
    (Scheme::QP, HashId::Mult),
    (Scheme::QP, HashId::Murmur),
    (Scheme::RH, HashId::Mult),
    (Scheme::RH, HashId::Murmur),
];

fn main() {
    let args = parse_args(std::env::args());
    let (_, _, large) = args.scale.capacity_bits();
    let bits = args.log2_capacity.unwrap_or(large);
    let seeds = args.seed_list();
    println!(
        "Figure 4 — WORM, high load factors, capacity 2^{bits} \
         ({} probes/stream, {} seed(s))\n",
        args.probe_count(),
        seeds.len()
    );

    for dist in Distribution::ALL {
        let cells: Vec<Vec<_>> = TABLES
            .iter()
            .map(|&(scheme, h)| {
                LOAD_FACTORS
                    .iter()
                    .map(|&lf| {
                        let cfg = WormConfig {
                            capacity_bits: bits,
                            load_factor: lf,
                            dist,
                            probes: args.probe_count(),
                            seed: 0,
                        };
                        worm_cell(scheme, h, &cfg, &seeds)
                    })
                    .collect()
            })
            .collect();

        let mut panel = ReportTable::new(
            format!("Fig 4 — {} distribution — insertions", dist.name()),
            "load factor %",
            LOAD_FACTORS.iter().map(|lf| format!("{:.0}", lf * 100.0)).collect(),
            "M inserts/s",
        );
        for (t, &(scheme, h)) in TABLES.iter().enumerate() {
            panel.push(Series::new(
                scheme.label(h),
                cells[t].iter().map(|c| c.insert_mops).collect(),
            ));
        }
        emit(&panel, args.csv);

        for (li, &lf) in LOAD_FACTORS.iter().enumerate() {
            let mut panel = ReportTable::new(
                format!(
                    "Fig 4 — {} distribution — lookups at {:.0}% load factor",
                    dist.name(),
                    lf * 100.0
                ),
                "unsuccessful %",
                cells[0][li].lookup_mops.iter().map(|(p, _)| p.to_string()).collect(),
                "M lookups/s",
            );
            for (t, &(scheme, h)) in TABLES.iter().enumerate() {
                panel.push(Series::new(
                    scheme.label(h),
                    cells[t][li].lookup_mops.iter().map(|&(_, v)| v).collect(),
                ));
            }
            emit(&panel, args.csv);
        }
    }
}
