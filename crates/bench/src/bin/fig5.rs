//! Figure 5: the read-write workload (RW).
//!
//! A long operation stream over growing tables (sparse keys), sweeping
//! the update percentage 0/5/25/50/75/100 at growth thresholds 50%, 70%
//! and 90%. Updates split insert:delete 4:1; lookups split
//! successful:unsuccessful 3:1. Upper panels report throughput, lower
//! panels the final memory footprint — ChainedH24 participates at the
//! 50% threshold only, as in the paper (§6).

use bench::{emit, parse_args, rw_cell, HashId, Scheme};
use metrics::{bytes_to_mb, ReportTable, Series};
use workloads::RwConfig;

const THRESHOLDS: [f64; 3] = [0.50, 0.70, 0.90];
const TABLES: [(Scheme, HashId); 10] = [
    (Scheme::Cuckoo4, HashId::Mult),
    (Scheme::Cuckoo4, HashId::Murmur),
    (Scheme::LP, HashId::Mult),
    (Scheme::LP, HashId::Murmur),
    (Scheme::QP, HashId::Mult),
    (Scheme::QP, HashId::Murmur),
    (Scheme::RH, HashId::Mult),
    (Scheme::RH, HashId::Murmur),
    (Scheme::Chained24, HashId::Mult),
    (Scheme::Chained24, HashId::Murmur),
];

fn main() {
    let args = parse_args(std::env::args());
    let ops = args.op_count();
    let initial = args.scale.rw_initial_keys();
    println!(
        "Figure 5 — RW workload: {ops} ops from {initial} initial keys, sparse, \
         insert:delete 4:1, hit:miss 3:1\n"
    );

    for &threshold in &THRESHOLDS {
        let ticks: Vec<String> = RwConfig::UPDATE_PCTS.iter().map(|p| p.to_string()).collect();
        let mut perf = ReportTable::new(
            format!("Fig 5 — growing at {:.0}% load factor — throughput", threshold * 100.0),
            "update %",
            ticks.clone(),
            "M ops/s",
        );
        let mut mem = ReportTable::new(
            format!("Fig 5 — growing at {:.0}% load factor — memory", threshold * 100.0),
            "update %",
            ticks,
            "MB",
        );
        for &(scheme, h) in &TABLES {
            // The paper keeps chained hashing only where its footprint
            // stays comparable: the 50% threshold.
            let include = scheme != Scheme::Chained24 || threshold <= 0.5;
            let mut perf_vals = Vec::new();
            let mut mem_vals = Vec::new();
            for &pct in &RwConfig::UPDATE_PCTS {
                if !include {
                    perf_vals.push(None);
                    mem_vals.push(None);
                    continue;
                }
                let cfg = RwConfig {
                    initial_keys: initial,
                    operations: ops,
                    update_pct: pct,
                    seed: 0xF15,
                };
                match rw_cell(scheme, h, threshold, cfg) {
                    Ok(out) => {
                        perf_vals.push(Some(out.mops));
                        mem_vals.push(Some(bytes_to_mb(out.memory_bytes)));
                    }
                    Err(_) => {
                        perf_vals.push(None);
                        mem_vals.push(None);
                    }
                }
            }
            perf.push(Series::new(scheme.label(h), perf_vals));
            mem.push(Series::new(scheme.label(h), mem_vals));
        }
        emit(&perf, args.csv);
        emit(&mem, args.csv);
    }
}
