//! Benchmark harness for the seven-dimensional hashing study.
//!
//! Each figure and table of the paper has a binary in `src/bin/` that
//! regenerates it (`fig2` … `fig8`, plus ablations); this library holds
//! what they share: the scale configuration ([`cli`]), and the
//! scheme × hash-function dispatch with multi-seed averaging
//! ([`runner`]).
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run --release -p bench --bin fig4 -- --scale default
//! cargo run --release -p bench --bin fig7 -- --log2-capacity 20 --seeds 3
//! ```

pub mod cli;
pub mod runner;

pub use cli::{parse_args, Args, Scale};
pub use runner::{
    lookup_scale_cell, readonly_scale_cell, rw_cell, rw_scale_cell, worm_cell, worm_cell_with,
    HashId, LookupScale, RwCellOut, ScalePoint, Scheme, WormCellOut,
};

/// Print a report panel as text, plus CSV when requested.
pub fn emit(table: &metrics::ReportTable, csv: bool) {
    println!("{}", table.to_text());
    if csv {
        println!("{}", table.to_csv());
    }
}
