//! Criterion micro-benchmark: scan kernels — scalar vs AVX2, AoS vs SoA.
//!
//! The kernel-level view of Figure 7: how fast can each layout scan for a
//! key or an empty slot? SoA loads four packed keys per step; AoS must
//! gather them (stride 2). Short probes (low load) are branch-dominated
//! and SIMD gains little; long probes (unsuccessful at high load) are
//! where the 4-wide compare pays.

use criterion::{criterion_group, criterion_main, Criterion};
use hashfn::{HashFamily, HashFn64, MultShift};
use sevendim_core::simd::{scan_keys, scan_pairs, simd_available, ProbeKind};
use sevendim_core::{Pair, EMPTY_KEY};
use std::hint::black_box;
use std::time::Duration;

const BITS: u8 = 14;
const LEN: usize = 1 << BITS;

/// Build a key array at `load` occupancy with linear-probing placement.
fn build_keys(load: f64) -> Vec<u64> {
    let h = MultShift::from_seed(3);
    let mut keys = vec![EMPTY_KEY; LEN];
    let n = (LEN as f64 * load) as usize;
    for i in 0..n {
        let k = hashfn::Murmur::fmix64(i as u64 + 1);
        let mut pos = hashfn::fold_to_bits(h.hash(k), BITS);
        while keys[pos] != EMPTY_KEY {
            pos = (pos + 1) & (LEN - 1);
        }
        keys[pos] = k;
    }
    keys
}

fn layout_simd(c: &mut Criterion) {
    if !simd_available() {
        eprintln!("note: AVX2 unavailable — 'simd' series measure the scalar fallback");
    }
    for load in [0.5f64, 0.9] {
        let keys = build_keys(load);
        let pairs: Vec<Pair> =
            keys.iter().map(|&k| Pair { key: k, value: k.wrapping_mul(3) }).collect();
        let h = MultShift::from_seed(3);
        // Miss keys force full-cluster scans — the long-probe case.
        let miss_keys: Vec<u64> =
            (0..256u64).map(|i| hashfn::Murmur::fmix64(1 << 40 | i)).collect();
        let mut group = c.benchmark_group(format!("scan_miss_at_{:.0}pct", load * 100.0));
        group.measurement_time(Duration::from_millis(700));
        group.warm_up_time(Duration::from_millis(200));
        group.sample_size(20);
        for (kind, kind_name) in [(ProbeKind::Scalar, "scalar"), (ProbeKind::Simd, "simd")] {
            group.bench_function(format!("soa_{kind_name}"), |b| {
                let mut i = 0;
                b.iter(|| {
                    let k = miss_keys[i % miss_keys.len()];
                    i += 1;
                    let start = hashfn::fold_to_bits(h.hash(k), BITS);
                    black_box(scan_keys(&keys, start, black_box(k), kind))
                })
            });
            group.bench_function(format!("aos_{kind_name}"), |b| {
                let mut i = 0;
                b.iter(|| {
                    let k = miss_keys[i % miss_keys.len()];
                    i += 1;
                    let start = hashfn::fold_to_bits(h.hash(k), BITS);
                    black_box(scan_pairs(&pairs, start, black_box(k), kind))
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, layout_simd);
criterion_main!(benches);
