//! Criterion micro-benchmark: single-key vs batched (prefetching) probes.
//!
//! The batch-first API exists for exactly one measurable reason: a batch
//! of independent probes can overlap its cache misses (software prefetch
//! plus hash amortization) where a single-key loop serializes them. This
//! bench quantifies that gap per scheme at the paper's load factors, for
//! all-successful and all-unsuccessful streams.
//!
//! CI runs `cargo bench -p bench --bench probe_batch -- --scale smoke`;
//! the `smoke` token shrinks the table and timing budget to keep the run
//! in CI seconds while still exercising every code path.

use criterion::measurement::WallTime;
use criterion::{criterion_group, criterion_main, BenchmarkGroup, Criterion};
use sevendim_core::{HashKind, HashTable, TableBuilder, TableScheme};
use std::hint::black_box;
use std::time::Duration;
use workloads::Distribution;

/// One batch per `lookup_batch` call — the size the query layer uses.
const BATCH: usize = 256;

fn smoke() -> bool {
    std::env::args().any(|a| a == "smoke" || a == "--smoke")
}

fn bits() -> u8 {
    if smoke() {
        12
    } else {
        20
    }
}

struct Mat {
    inserts: Vec<u64>,
    misses: Vec<u64>,
}

fn material(load: f64) -> Mat {
    let n = ((1usize << bits()) as f64 * load) as usize;
    let sets = Distribution::Sparse.generate_with_misses(n, n, 11);
    Mat { inserts: sets.inserts, misses: sets.misses }
}

fn bench_stream(
    group: &mut BenchmarkGroup<'_, WallTime>,
    label: &str,
    table: &dyn HashTable,
    stream: &[u64],
) {
    group.bench_function(format!("{label}/single"), |b| {
        let mut i = 0;
        b.iter(|| {
            let mut found = 0usize;
            for _ in 0..BATCH {
                let k = stream[i % stream.len()];
                i += 1;
                found += table.lookup(black_box(k)).is_some() as usize;
            }
            black_box(found)
        })
    });
    group.bench_function(format!("{label}/batched"), |b| {
        let mut out = vec![None; BATCH];
        let mut i = 0;
        b.iter(|| {
            let start = i % (stream.len() - BATCH);
            i += BATCH;
            table.lookup_batch(black_box(&stream[start..start + BATCH]), &mut out);
            black_box(out.iter().flatten().count())
        })
    });
}

fn probe_batch(c: &mut Criterion) {
    // The paper's WORM load factors where each scheme is interesting:
    // LP's comfort zone, the mid band, and cuckoo territory.
    for load in [0.5f64, 0.7, 0.9] {
        let mat = material(load);
        let mut group = c.benchmark_group(format!("batch_at_{:.0}pct", load * 100.0));
        let (measure_ms, warm_ms) = if smoke() { (80, 20) } else { (700, 200) };
        group.measurement_time(Duration::from_millis(measure_ms));
        group.warm_up_time(Duration::from_millis(warm_ms));
        group.sample_size(10);
        for (scheme, simd) in [
            (TableScheme::LinearProbing, false),
            (TableScheme::LinearProbingSoA, true),
            (TableScheme::RobinHood, false),
            (TableScheme::Cuckoo4, false),
            (TableScheme::Fingerprint, true),
        ] {
            let mut table = TableBuilder::new(scheme)
                .hash(HashKind::Mult)
                .bits(bits())
                .seed(1)
                .simd(simd)
                .build();
            for &k in &mat.inserts {
                table.insert(k, k).unwrap();
            }
            let label = table.display_name();
            bench_stream(&mut group, &format!("{label}/hit"), &table, &mat.inserts);
            bench_stream(&mut group, &format!("{label}/miss"), &table, &mat.misses);
        }
        group.finish();
    }
}

criterion_group!(benches, probe_batch);
criterion_main!(benches);
