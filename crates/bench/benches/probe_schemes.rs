//! Criterion micro-benchmark: per-scheme probe cost.
//!
//! Lookup latency of each hashing scheme at 50% and 90% load with
//! Multiply-shift, split into all-successful and all-unsuccessful
//! streams — the micro-scale version of Figure 4's panels, useful for
//! spotting regressions in a single scheme's probe loop.

use criterion::measurement::WallTime;
use criterion::{criterion_group, criterion_main, BenchmarkGroup, Criterion};
use hashfn::MultShift;
use sevendim_core::{
    ChainedTable24, Cuckoo, HashTable, LinearProbing, QuadraticProbing, RobinHood,
};
use std::hint::black_box;
use std::time::Duration;
use workloads::Distribution;

const BITS: u8 = 14;

struct Mat {
    inserts: Vec<u64>,
    misses: Vec<u64>,
}

fn material(load: f64) -> Mat {
    let n = ((1usize << BITS) as f64 * load) as usize;
    let sets = Distribution::Sparse.generate_with_misses(n, n, 7);
    Mat { inserts: sets.inserts, misses: sets.misses }
}

fn bench_scheme<T: HashTable>(
    group: &mut BenchmarkGroup<'_, WallTime>,
    name: &str,
    mut table: T,
    mat: &Mat,
) {
    for &k in &mat.inserts {
        table.insert(k, k).unwrap();
    }
    group.bench_function(format!("{name}/hit"), |b| {
        let mut i = 0;
        b.iter(|| {
            let k = mat.inserts[i % mat.inserts.len()];
            i += 1;
            black_box(table.lookup(black_box(k)))
        })
    });
    group.bench_function(format!("{name}/miss"), |b| {
        let mut i = 0;
        b.iter(|| {
            let k = mat.misses[i % mat.misses.len()];
            i += 1;
            black_box(table.lookup(black_box(k)))
        })
    });
}

fn probe_schemes(c: &mut Criterion) {
    for load in [0.5f64, 0.9] {
        let mat = material(load);
        let mut group = c.benchmark_group(format!("probe_at_{:.0}pct", load * 100.0));
        group.measurement_time(Duration::from_millis(700));
        group.warm_up_time(Duration::from_millis(200));
        group.sample_size(20);
        bench_scheme(&mut group, "LPMult", LinearProbing::<MultShift>::with_seed(BITS, 1), &mat);
        bench_scheme(&mut group, "QPMult", QuadraticProbing::<MultShift>::with_seed(BITS, 1), &mat);
        bench_scheme(&mut group, "RHMult", RobinHood::<MultShift>::with_seed(BITS, 1), &mat);
        bench_scheme(&mut group, "CuckooH4Mult", Cuckoo::<MultShift, 4>::with_seed(BITS, 1), &mat);
        if load <= 0.5 {
            // Chained participates where its budget would allow (cf. §4.5).
            bench_scheme(
                &mut group,
                "ChainedH24Mult",
                ChainedTable24::<MultShift>::with_seed(BITS - 1, 1),
                &mat,
            );
        }
        group.finish();
    }
}

criterion_group!(benches, probe_schemes);
criterion_main!(benches);
