//! Criterion micro-benchmark: hash-function cost (paper §4.4).
//!
//! The paper counts instructions: Mult is one multiply + one shift;
//! Murmur's finalizer two multiplies and some xor/shifts; MultAdd without
//! native 128-bit arithmetic "two multiplications, six additions, plus
//! logical ANDs and shifts"; tabulation is eight L1 loads. The expected
//! ranking — Mult < Murmur < MultAdd64 ≲ Tab, with native-u128 MultAdd in
//! between — is exactly what this bench prints.

use criterion::measurement::WallTime;
use criterion::{criterion_group, criterion_main, BenchmarkGroup, Criterion};
use hashfn::{
    CityMix, Crc, Djb2, Fnv1a, HashFamily, MultAddShift, MultAddShift32, MultAddShift64, MultShift,
    Murmur, Tabulation,
};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 4096;

fn keys() -> Vec<u64> {
    // Sparse keys via the (bijective) Murmur mixer.
    (0..N as u64).map(|i| Murmur::fmix64(i.wrapping_add(99))).collect()
}

fn bench_fn<H: HashFamily>(group: &mut BenchmarkGroup<'_, WallTime>, ks: &[u64]) {
    let h = H::from_seed(42);
    group.bench_function(H::name(), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in ks {
                acc ^= h.hash(black_box(k));
            }
            black_box(acc)
        })
    });
}

fn hash_functions(c: &mut Criterion) {
    let ks = keys();
    let mut group = c.benchmark_group("hash_functions_4096_keys");
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));
    group.sample_size(20);
    bench_fn::<MultShift>(&mut group, &ks);
    bench_fn::<Murmur>(&mut group, &ks);
    bench_fn::<MultAddShift>(&mut group, &ks);
    bench_fn::<MultAddShift64>(&mut group, &ks);
    bench_fn::<MultAddShift32>(&mut group, &ks);
    bench_fn::<Tabulation>(&mut group, &ks);
    // The engineered class the paper's footnote 6 names.
    bench_fn::<Fnv1a>(&mut group, &ks);
    bench_fn::<Djb2>(&mut group, &ks);
    bench_fn::<Crc>(&mut group, &ks);
    bench_fn::<CityMix>(&mut group, &ks);
    group.finish();
}

criterion_group!(benches, hash_functions);
criterion_main!(benches);
