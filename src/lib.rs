//! # seven-dim-hashing
//!
//! A faithful, from-scratch Rust reproduction of
//! *"A Seven-Dimensional Analysis of Hashing Methods and its Implications
//! on Query Processing"* (Richter, Alvarez, Dittrich; PVLDB 9(3), 2015).
//!
//! The paper studies hash tables for 64-bit integer keys along seven
//! dimensions — data distribution, load factor, dataset size, read/write
//! ratio, un/successful lookup ratio, hashing scheme, and hash function —
//! plus memory layout (AoS/SoA) and SIMD probing. This workspace
//! implements every scheme and hash function in the study, the workload
//! generators, the measurement harness that regenerates each figure, and
//! the paper's decision graph as an executable API.
//!
//! ## Crate map
//!
//! | Module (re-export) | Crate | Contents |
//! |---|---|---|
//! | [`hash`] | `hashfn` | Multiply-shift, multiply-add-shift, tabulation, Murmur3 finalizer; quality statistics |
//! | [`tables`] | `sevendim-core` | ChainedH8/H24, LP (AoS + SoA, scalar + AVX2), QP, RH, CuckooH2/3/4, bucketized fingerprint (FP, SSE2 tag scans); growing wrapper; sharded concurrent wrapper; displacement/cluster stats; Figure 8 decision graph |
//! | [`workload`] | `workloads` | dense/sparse/grid distributions; WORM and RW drivers (single- and multi-threaded) |
//! | [`measure`] | `metrics` | throughput, multi-seed statistics, latency histograms, figure-shaped report tables |
//! | [`ops`] | `query` | hash join, group-by aggregation, profile-dispatched point index |
//! | [`net`] | `sevendim-net` | networked KV service: epoll event loop, `7DKV` binary protocol, pipelined client (Linux) |
//! | [`durable`] | `sevendim-durable` | durability: group-committed `7DWL` write-ahead log, non-stop snapshots, crash recovery |
//!
//! ## Quick start
//!
//! Construction goes through one [`TableBuilder`](prelude::TableBuilder)
//! (scheme × hash × capacity × seed × SIMD × growth), and every table
//! speaks the batch-first [`HashTable`](prelude::HashTable) trait:
//! `lookup_batch` / `insert_batch` / `delete_batch` are element-wise
//! identical to the single-key calls, but the open-addressing tables
//! overlap the cache misses of a whole batch via software prefetching.
//!
//! ```
//! use seven_dim_hashing::prelude::*;
//!
//! // A Robin Hood table with multiply-shift hashing: 2^10 slots.
//! let mut table = TableBuilder::new(TableScheme::RobinHood)
//!     .hash(HashKind::Mult)
//!     .bits(10)
//!     .seed(42)
//!     .build();
//! table.insert(17, 1700).unwrap();
//! assert_eq!(table.lookup(17), Some(1700));
//!
//! // Probes arrive in bulk in query processing — issue them in bulk:
//! let keys = [17u64, 18, 19];
//! let mut values = [None; 3];
//! table.lookup_batch(&keys, &mut values);
//! assert_eq!(values, [Some(1700), None, None]);
//!
//! // Ask the paper's decision graph what to use for a write-heavy index:
//! let profile = WorkloadProfile {
//!     load_factor: 0.7,
//!     successful_ratio: 0.9,
//!     write_ratio: 0.8,
//!     dense_keys: false,
//!     mutability: Mutability::Dynamic,
//! };
//! assert_eq!(recommend(&profile), TableChoice::QPMult);
//! let index = TableBuilder::for_profile(&profile, 16, 42)
//!     .grow_at(0.7)       // double at 70% load …
//!     .incremental(8)     // … migrating ≤ 8 entries per op, no rehash pause
//!     .build();
//! assert_eq!(index.display_name(), "QPMult");
//!
//! // Scale the same description across threads: 2^2 independently locked
//! // shards, each its own growing table (no stop-the-world rehash), with
//! // batch routing by radix partition. `&self` batch ops via ConcurrentTable.
//! let sharded = TableBuilder::new(TableScheme::RobinHood)
//!     .bits(12)
//!     .shards(2)
//!     .grow_at(0.7)
//!     .build_sharded();
//! sharded.insert_shared(17, 1700).unwrap();
//! assert_eq!(sharded.lookup_shared(17), Some(1700));
//! assert_eq!(sharded.display_name(), "Sharded4xRHMult");
//! ```
//!
//! ## Migration from the PR-1 constructors
//!
//! The typed constructors still exist (concrete table types remain the
//! right tool when the scheme is fixed at compile time), but the ad-hoc
//! construction surface is superseded:
//!
//! | PR-1 | now |
//! |---|---|
//! | `LinearProbing::<MultShift>::with_seed(bits, seed)` | `TableBuilder::new(TableScheme::LinearProbing).bits(bits).seed(seed).build()` |
//! | `LinearProbingSoA::with_seed_simd(bits, seed)` | `TableBuilder::new(TableScheme::LinearProbingSoA).simd(true)…` |
//! | `DynamicTable::new(LpFactory::new(), bits, seed, 0.7)` | `TableBuilder::new(TableScheme::LinearProbing).bits(bits).seed(seed).grow_at(0.7).build()` |
//! | `ChainedTable24::with_budget(bits, n, seed)` | `TableBuilder::new(TableScheme::Chained24).chained_budget(n)….try_build()` |
//! | `PointIndex::for_profile(&p, bits, seed)` | unchanged, or `TableBuilder::for_profile(&p, bits, seed).build()` |
//! | `PointIndex::{get, remove}` | `HashTable::{lookup, delete}` (the deprecated aliases were removed in PR 4) |
//! | `LinearProbing::delete_rehash(k)` | `set_delete_strategy(DeleteStrategy::Rehash)` + trait `delete` |
//! | `RobinHood::{lookup_dmax, lookup_checked}` | `set_lookup_mode(RhLookupMode::{DmaxBound, CheckedEveryProbe})` + trait `lookup` |

pub use hashfn as hash;
pub use metrics as measure;
pub use query as ops;
pub use sevendim_core as tables;
pub use sevendim_durable as durable;
pub use sevendim_net as net;
pub use workloads as workload;

/// The names you need for day-to-day use: every table, every hash
/// function, the workload types, and the decision graph.
pub mod prelude {
    pub use hashfn::{
        HashFamily, HashFn64, MultAddShift, MultAddShift64, MultShift, Murmur, Tabulation,
    };
    pub use metrics::{LatencyHistogram, ReportTable, SeedStats, Series, Throughput};
    pub use query::{
        group_aggregate, group_aggregate_parallel, group_average, hash_join, hash_join_parallel,
        AggFn, PointIndex,
    };
    pub use sevendim_core::cuckoo::{CuckooH2, CuckooH3, CuckooH4};
    pub use sevendim_core::{
        decision::Mutability, recommend, AdaptiveConfig, BoxedTable, ChainedTable24, ChainedTable8,
        ConcurrentTable, Cuckoo, DeleteStrategy, DynamicTable, EntrySnapshot, FingerprintTable,
        FsyncPolicy, GrowthPolicy, HashKind, HashTable, InsertOutcome, LinearProbing,
        LinearProbingSoA, MigrationPolicy, QuadraticProbing, ReadView, RhLookupMode, RobinHood,
        ShardedTable, TableBuilder, TableChoice, TableError, TableScheme, TableStats,
        WorkloadProfile,
    };
    pub use sevendim_durable::{DurableSharded, DurableTable, RecoveryReport, WalError};
    #[cfg(target_os = "linux")]
    pub use sevendim_net::{AcceptMode, KvServer, KvServerBuilder, ServerHandle, ServerStats};
    // The client and full wire protocol are portable; the protocol
    // module stays namespaced (`seven_dim_hashing::net::protocol`) so
    // its `Op`/`Request` names don't shadow user types on glob import.
    pub use sevendim_net::KvClient;
    pub use workloads::{Distribution, RwConfig, RwStream, WormConfig, WormKeys};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_links_all_crates() {
        let mut t: LinearProbing<Murmur> = LinearProbing::with_seed(8, 1);
        t.insert(1, 2).unwrap();
        assert_eq!(t.lookup(1), Some(2));
        let keys = Distribution::Dense.generate(10, 1);
        assert_eq!(keys.len(), 10);
        let tp = Throughput { ops: 1_000_000, nanos: 1_000_000_000 };
        assert!((tp.m_ops_per_sec() - 1.0).abs() < 1e-12);
    }
}
