//! Hash aggregation — GROUP BY over the study's tables (paper §1, §4).
//!
//! ```text
//! cargo run --release --example aggregation [n_rows] [n_groups]
//! ```
//!
//! Computes `SELECT region, SUM(amount), MIN(amount), MAX(amount),
//! COUNT(*), AVG(amount) FROM sales GROUP BY region` with a hash table as
//! the aggregation state, then cross-checks every aggregate against a
//! scalar re-computation.

use seven_dim_hashing::prelude::*;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000_000);
    let n_groups: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);

    // Synthetic sales: group keys are dense region ids (the paper's dense
    // distribution — exactly what GROUP BY on a dictionary-encoded column
    // produces), values are amounts.
    let rows: Vec<(u64, u64)> = (0..n_rows as u64)
        .map(|i| {
            let region = Murmur::fmix64(i) % n_groups + 1;
            let amount = (i * 37) % 10_000;
            (region, amount)
        })
        .collect();

    let mut bits = 1u8;
    while (1usize << bits) < (n_groups as usize) * 2 {
        bits += 1;
    }
    println!("{n_rows} rows into {n_groups} groups, state table 2^{bits} slots\n");

    println!("{:<14} {:>10} {:>14}", "aggregate", "groups", "M rows/s");
    for agg in [AggFn::Sum, AggFn::Min, AggFn::Max, AggFn::Count] {
        let mut state: LinearProbing<MultShift> = LinearProbing::with_seed(bits, 7);
        let t0 = Instant::now();
        let result = group_aggregate(&mut state, &rows, agg).expect("aggregate");
        let dt = t0.elapsed();
        verify(&rows, &result, agg);
        println!(
            "{:<14} {:>10} {:>14.1}",
            format!("{agg:?}"),
            result.len(),
            n_rows as f64 / dt.as_secs_f64() / 1e6
        );
    }

    // AVERAGE is algebraic: SUM/COUNT over two state tables.
    let mut sums: RobinHood<MultShift> = RobinHood::with_seed(bits, 8);
    let mut counts: RobinHood<MultShift> = RobinHood::with_seed(bits, 9);
    let t0 = Instant::now();
    let avgs = group_average(&mut sums, &mut counts, &rows).expect("average");
    let dt = t0.elapsed();
    println!("{:<14} {:>10} {:>14.1}", "Avg", avgs.len(), n_rows as f64 / dt.as_secs_f64() / 1e6);
    let (k, v) = avgs.iter().find(|(k, _)| *k == 1).expect("group 1 exists");
    println!("\nspot check: AVG(amount) for region {k} = {v:.2}");
}

fn verify(rows: &[(u64, u64)], result: &[(u64, u64)], agg: AggFn) {
    use std::collections::HashMap;
    let mut expect: HashMap<u64, u64> = HashMap::new();
    for &(k, v) in rows {
        expect
            .entry(k)
            .and_modify(|acc| {
                *acc = match agg {
                    AggFn::Sum => acc.wrapping_add(v),
                    AggFn::Min => (*acc).min(v),
                    AggFn::Max => (*acc).max(v),
                    AggFn::Count => *acc + 1,
                }
            })
            .or_insert(match agg {
                AggFn::Count => 1,
                _ => v,
            });
    }
    assert_eq!(result.len(), expect.len(), "{agg:?}: group count");
    for &(k, v) in result {
        assert_eq!(expect.get(&k), Some(&v), "{agg:?}: group {k}");
    }
}
