//! Join processing with different hash tables — the paper's motivating
//! use case (§1).
//!
//! ```text
//! cargo run --release --example hash_join [n_orders] [n_lineitems]
//! ```
//!
//! A PK–FK join of `orders ⋈ lineitem` (unique order keys on the build
//! side, several line items per order probing it), executed with several
//! build tables. The FK hit rate is deliberately < 100% (think of a
//! filtered orders table) so the unsuccessful-lookup dimension — the one
//! the paper shows drives the LP-vs-chained crossover — is visible.

use seven_dim_hashing::prelude::*;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_orders: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let n_items: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_000_000);

    // Orders: dense primary keys 1..=n (generated keys, the paper's dense
    // distribution); payload = customer id.
    let orders: Vec<(u64, u64)> = (1..=n_orders as u64).map(|k| (k, k % 1000)).collect();
    // Line items reference orders from a 25% wider key space: ~20% of
    // probes miss (filtered build side).
    let probe_space = (n_orders as u64 * 5) / 4;
    let items: Vec<(u64, u64)> = (0..n_items as u64)
        .map(|i| {
            let fk = Murmur::fmix64(i) % probe_space + 1;
            (fk, i)
        })
        .collect();

    // Capacity: next power of two holding the orders at ≤ 50% load.
    let mut bits = 1u8;
    while (1usize << bits) < n_orders * 2 {
        bits += 1;
    }

    println!(
        "orders JOIN lineitem: {n_orders} build rows, {n_items} probe rows, \
         build table 2^{bits} slots\n"
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "build table", "matches", "misses", "M probes/s", "total ms"
    );

    // One builder spans the whole build-table grid; `hash_join` probes it
    // through the batched (prefetching) lookup path.
    for (scheme, hash) in [
        (TableScheme::LinearProbing, HashKind::Mult),
        (TableScheme::RobinHood, HashKind::Mult),
        (TableScheme::Quadratic, HashKind::Murmur),
        (TableScheme::Chained24, HashKind::Mult),
        (TableScheme::Cuckoo4, HashKind::Murmur),
    ] {
        let mut table = TableBuilder::new(scheme).hash(hash).bits(bits).seed(1).build();
        run(&mut table, &orders, &items);
    }

    println!(
        "\nThe paper's Figure 2 story: LPMult and ChainedH24Mult contend for \
         the top spot, with the probe miss rate deciding the crossover \
         (LP favoured when most probes hit, chained as misses grow); \
         CuckooH4's flat-but-higher probe cost trails at this load factor."
    );

    // The same join, radix-partitioned across threads: partition i of the
    // probe side can only match partition i of the build side, so each
    // thread builds and probes its own 1/P-sized table independently.
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8);
    println!("\npartitioned parallel join ({threads} threads):");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "build table", "matches", "misses", "M probes/s", "total ms"
    );
    for (scheme, hash) in
        [(TableScheme::LinearProbing, HashKind::Mult), (TableScheme::Chained24, HashKind::Mult)]
    {
        let builder = TableBuilder::new(scheme).hash(hash).bits(bits).seed(1);
        let t0 = Instant::now();
        let out = hash_join_parallel(&builder, &orders, &items, threads).expect("parallel join");
        let total = t0.elapsed();
        println!(
            "{:<22} {:>12} {:>12} {:>12.1} {:>10.1}",
            format!("{}x{}", threads, builder.label()),
            out.rows.len(),
            out.probe_misses,
            items.len() as f64 / total.as_secs_f64() / 1e6,
            total.as_secs_f64() * 1e3,
        );
    }
}

fn run<T: HashTable>(table: &mut T, orders: &[(u64, u64)], items: &[(u64, u64)]) {
    let name = table.display_name();
    let t0 = Instant::now();
    let out = hash_join(table, orders, items).expect("join");
    let total = t0.elapsed();
    // Probe throughput estimate: the probe side dominates at 5 items/order.
    let probe_mops = items.len() as f64 / total.as_secs_f64() / 1e6;
    println!(
        "{:<22} {:>12} {:>12} {:>12.1} {:>10.1}",
        name,
        out.rows.len(),
        out.probe_misses,
        probe_mops,
        total.as_secs_f64() * 1e3,
    );
}
