//! Quickstart: the core API in two minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds one table of every scheme, exercises map semantics, loads a
//! sharded table from four threads, and asks the paper's decision graph
//! for a recommendation.

use seven_dim_hashing::prelude::*;

fn main() {
    // --- 1. One builder constructs every scheme; one trait drives it. ---
    let mut tables: Vec<BoxedTable> = [
        TableScheme::LinearProbing,
        TableScheme::Quadratic,
        TableScheme::RobinHood,
        TableScheme::Cuckoo4,
        TableScheme::Chained8,
        TableScheme::Chained24,
    ]
    .into_iter()
    .map(|scheme| {
        let hash = if matches!(scheme, TableScheme::Chained8 | TableScheme::Chained24) {
            HashKind::Murmur
        } else {
            HashKind::Mult
        };
        TableBuilder::new(scheme).hash(hash).bits(16).seed(42).build()
    })
    .collect();

    // Bulk load through the batch API — the path with software
    // prefetching, and the way query operators feed tables.
    let items: Vec<(u64, u64)> = (1..=40_000u64).map(|k| (k, k * 10)).collect();
    let mut outcomes = vec![Ok(InsertOutcome::Inserted); items.len()];

    println!("{:<18} {:>10} {:>12} {:>10}", "table", "entries", "lookup(7)", "MB");
    for t in tables.iter_mut() {
        t.insert_batch(&items, &mut outcomes);
        assert!(outcomes.iter().all(|o| o.is_ok()), "bulk load failed");
        t.delete(13);
        assert_eq!(t.lookup(13), None);
        assert_eq!(t.insert(7, 777).expect("update"), InsertOutcome::Replaced(70));
        // Batched point reads: one call, many overlapping probes.
        let keys = [7u64, 13, 40_001];
        let mut values = [None; 3];
        t.lookup_batch(&keys, &mut values);
        assert_eq!(values, [Some(777), None, None]);
        println!(
            "{:<18} {:>10} {:>12?} {:>10.1}",
            t.display_name(),
            t.len(),
            values[0].unwrap(),
            t.memory_bytes() as f64 / 1e6,
        );
    }

    // --- 2. The same description scales across threads: `.shards(k)`. ---
    // Four independently locked shards; `insert_batch_shared` & co. take
    // `&self`, so worker threads share the table directly.
    let sharded = TableBuilder::new(TableScheme::RobinHood).bits(16).shards(2).build_sharded();
    std::thread::scope(|scope| {
        for thread in 0..4u64 {
            let sharded = &sharded;
            scope.spawn(move || {
                let base = 1 + thread * 10_000;
                let items: Vec<(u64, u64)> = (base..base + 10_000).map(|k| (k, k * 10)).collect();
                let mut outcomes = vec![Ok(InsertOutcome::Inserted); items.len()];
                sharded.insert_batch_shared(&items, &mut outcomes);
                assert!(outcomes.iter().all(|o| o.is_ok()));
            });
        }
    });
    println!(
        "\n{} loaded by 4 threads: {} entries across {} shards",
        sharded.display_name(),
        sharded.len_shared(),
        sharded.num_shards(),
    );

    // --- 3. Hash functions are a separate, swappable dimension. ---------
    let mult = MultShift::from_seed(1);
    let murmur = Murmur::from_seed(1);
    println!("\nmult(12345)   = {:#018x}", mult.hash(12345));
    println!("murmur(12345) = {:#018x}", murmur.hash(12345));

    // --- 4. The paper's Figure 8, as a function. -------------------------
    let profiles = [
        (
            "point-lookup index, half full, all hits",
            WorkloadProfile {
                load_factor: 0.45,
                successful_ratio: 1.0,
                write_ratio: 0.05,
                dense_keys: true,
                mutability: Mutability::Static,
            },
        ),
        (
            "existence filter, mostly misses",
            WorkloadProfile {
                load_factor: 0.45,
                successful_ratio: 0.1,
                write_ratio: 0.0,
                dense_keys: false,
                mutability: Mutability::Static,
            },
        ),
        (
            "OLTP hot table, write-heavy",
            WorkloadProfile {
                load_factor: 0.7,
                successful_ratio: 0.9,
                write_ratio: 0.7,
                dense_keys: false,
                mutability: Mutability::Dynamic,
            },
        ),
        (
            "memory-tight build side of a join, 90% full",
            WorkloadProfile {
                load_factor: 0.9,
                successful_ratio: 0.95,
                write_ratio: 0.0,
                dense_keys: false,
                mutability: Mutability::Static,
            },
        ),
    ];
    println!();
    for (desc, p) in profiles {
        println!("{desc:<46} -> {}", recommend(&p).name());
    }
}
