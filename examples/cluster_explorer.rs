//! Cluster explorer: see *why* the figures look the way they do.
//!
//! ```text
//! cargo run --release --example cluster_explorer [log2_capacity]
//! ```
//!
//! Prints displacement and cluster statistics for linear probing and
//! Robin Hood under every distribution × hash function × load factor —
//! the structural quantities behind the paper's §5 discussion:
//!
//! * dense + Mult ⇒ an approximate arithmetic progression: near-zero
//!   displacement even at 90% load (LP's best case);
//! * sparse/grid keys ⇒ primary clustering as load grows (long maximum
//!   clusters = slow unsuccessful lookups);
//! * RH leaves totals unchanged but slashes variance and max — the
//!   reason its worst case is so much better.

use seven_dim_hashing::prelude::*;

fn main() {
    let bits: u8 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    println!("capacity 2^{bits}\n");
    println!(
        "{:<8} {:<8} {:<5} | {:>10} {:>8} {:>8} {:>10} | {:>9} {:>9}",
        "dist", "hash", "lf%", "disp.mean", "disp.max", "var", "RH.max", "clusters", "max.clust"
    );
    println!("{}", "-".repeat(100));

    for dist in [Distribution::Dense, Distribution::Grid, Distribution::Sparse] {
        for hash_name in ["Mult", "Murmur"] {
            for lf in [0.5f64, 0.7, 0.9] {
                let n = ((1usize << bits) as f64 * lf) as usize;
                let keys = dist.generate(n, 11);
                let (lp_stats, rh_stats, clusters) = match hash_name {
                    "Mult" => build::<MultShift>(bits, &keys),
                    _ => build::<Murmur>(bits, &keys),
                };
                println!(
                    "{:<8} {:<8} {:<5.0} | {:>10.2} {:>8} {:>8.1} {:>10} | {:>9} {:>9}",
                    dist.name(),
                    hash_name,
                    lf * 100.0,
                    lp_stats.0,
                    lp_stats.1,
                    lp_stats.2,
                    rh_stats,
                    clusters.0,
                    clusters.1,
                );
            }
        }
    }

    println!(
        "\nReading guide: dense+Mult rows keep disp.mean near 0 even at 90% — \
         the arithmetic-progression effect (§5.2). Murmur rows look the same \
         across distributions — it erases the input distribution. RH.max \
         (Robin Hood's max displacement) sits far below LP's disp.max at \
         high load, powering its early-abort lookups (§2.4)."
    );
}

/// Build LP and RH tables over `keys`; return (LP mean/max/variance,
/// RH max displacement, (cluster count, max cluster)).
fn build<H: HashFamily>(bits: u8, keys: &[u64]) -> ((f64, usize, f64), usize, (usize, usize)) {
    let mut lp: LinearProbing<H> = LinearProbing::with_seed(bits, 5);
    let mut rh: RobinHood<H> = RobinHood::with_seed(bits, 5);
    for &k in keys {
        lp.insert(k, k).expect("insert lp");
        rh.insert(k, k).expect("insert rh");
    }
    let ls = lp.displacement_stats();
    let rs = rh.displacement_stats();
    let cs = lp.cluster_stats();
    assert_eq!(ls.total, rs.total, "RH must preserve total displacement");
    ((ls.mean, ls.max, ls.variance), rs.max, (cs.clusters, cs.max_len))
}
