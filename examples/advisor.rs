//! Hash-table advisor: the paper's decision graph as a CLI.
//!
//! ```text
//! cargo run --release --example advisor -- \
//!     --load-factor 0.7 --successful 0.9 --writes 0.6 --dense --dynamic
//! ```
//!
//! Prints the recommended table plus the rationale (which edge of the
//! paper's Figure 8 fired), then builds a [`PointIndex`] dispatched on
//! the recommendation and demonstrates it on a small key set. Without
//! arguments, prints the full decision surface as a grid.

use seven_dim_hashing::prelude::*;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print_decision_surface();
        return;
    }

    let mut p = WorkloadProfile::baseline();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> f64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric value"))
        };
        match flag.as_str() {
            "--load-factor" => p.load_factor = num("--load-factor"),
            "--successful" => p.successful_ratio = num("--successful"),
            "--writes" => p.write_ratio = num("--writes"),
            "--dense" => p.dense_keys = true,
            "--dynamic" => p.mutability = Mutability::Dynamic,
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: advisor [--load-factor F] [--successful F] [--writes F] \
                     [--dense] [--dynamic]"
                );
                std::process::exit(2);
            }
        }
    }

    let choice = recommend(&p);
    println!("profile: {p:?}");
    println!("recommendation: {}\n", choice.name());
    println!("rationale:");
    print_rationale(&p, choice);

    // Build the index the recommendation implies and show it working.
    let mut idx = PointIndex::for_profile(&p, 16, 42);
    let n = ((1usize << 16) as f64 * p.load_factor) as u64;
    for k in 1..=n {
        idx.insert(k, k * 3).expect("insert");
    }
    println!(
        "\nbuilt {} with {} entries ({:.1} MB); lookup(42) = {:?}",
        idx.table_name(),
        idx.len(),
        idx.memory_bytes() as f64 / 1e6,
        idx.lookup(42)
    );
}

fn print_rationale(p: &WorkloadProfile, choice: TableChoice) {
    if p.load_factor < 0.5 {
        println!("  - load factor < 50%: collisions are rare, simplicity wins (§5.1)");
        if p.successful_ratio >= 0.5 || p.write_ratio > 0.5 {
            println!("  - lookups mostly succeed: LP scans stop at the key (§5.1)");
        } else {
            println!(
                "  - lookups mostly miss: LP must scan whole clusters; chained \
                 answers from short lists (§5.1)"
            );
        }
    } else if p.write_ratio > 0.5 {
        println!("  - write-heavy at ≥50% load: insert cost dominates (§6)");
        if p.dense_keys {
            println!("  - dense keys + Mult lay out contiguously: LP extends runs (§5.2)");
        } else {
            println!("  - QP scatters collisions instead of growing clusters (§5.2, §6)");
        }
    } else {
        println!("  - read-mostly at ≥50% load: lookup cost dominates (§5.2)");
        if p.load_factor >= 0.8 {
            println!(
                "  - very full table: cuckoo's ≤4 probes beat scanning clusters \
                 (§5.2, from ~80% load)"
            );
        } else if p.successful_ratio < 0.5 {
            println!(
                "  - miss-heavy: chained under budget at ≤50% load; past that, the \
                 fingerprint table rejects misses from its tag array without \
                 touching key lines"
            );
        } else {
            println!("  - RH is the paper's all-rounder in the 50–80% band (Fig. 6)");
        }
    }
    println!("  => {}", choice.name());
}

fn print_decision_surface() {
    println!("Decision surface (static workloads, sparse keys):\n");
    println!("{:<14} successful lookups →", "");
    print!("{:<14}", "load factor ↓");
    for s in [0.0, 0.25, 0.5, 0.75, 1.0] {
        print!(" {:>16}", format!("{:.0}%", s * 100.0));
    }
    println!();
    for lf in [0.25, 0.35, 0.45, 0.5, 0.7, 0.8, 0.9] {
        print!("{:<14}", format!("{:.0}%", lf * 100.0));
        for s in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = WorkloadProfile {
                load_factor: lf,
                successful_ratio: s,
                write_ratio: 0.0,
                dense_keys: false,
                mutability: Mutability::Static,
            };
            print!(" {:>16}", recommend(&p).name());
        }
        println!();
    }
    println!("\n(write-heavy dynamic workloads: QPMult everywhere except dense keys → LPMult)");
    println!("run with flags to evaluate one profile: --load-factor 0.7 --successful 0.9 ...");
}
