//! Test execution support: configuration, case errors, and the seeded RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Precondition unmet (`prop_assume!`); the case is discarded.
    Reject(String),
    /// Assertion failure; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Build a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// RNG driving strategy sampling; seeded from the test path so every run
/// of a given test explores the same deterministic case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for the named test (FNV-1a of the name).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(hash) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
