//! `any::<T>()`: the canonical full-range strategy of a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Clone + Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

/// The strategy generating every value of `T` uniformly.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
