//! Offline stand-in for the slice of `proptest` this workspace's property
//! tests use.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the API the `proptest_invariants` suite needs: the
//! [`Strategy`] trait (`prop_map`, `boxed`), integer-range / `Just` /
//! tuple / [`collection::vec`] strategies, [`arbitrary::any`], weighted
//! [`prop_oneof!`], the [`proptest!`] test macro with
//! `#![proptest_config]`, and the `prop_assert*` / [`prop_assume!`]
//! macros. Failing cases report their inputs but are **not shrunk** —
//! minimization is the real crate's value-add and well out of scope for a
//! stub. Case generation is deterministic per test (seeded from the test
//! path), so failures reproduce across runs.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Assert a condition inside a proptest body; failure fails only this
/// case (reported with its inputs) rather than panicking the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two expressions are equal (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Assert two expressions are unequal (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose between strategies producing the same value type, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest '{}': too many rejected cases ({} accepted)",
                                stringify!($name),
                                accepted
                            );
                        }
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        let mut inputs = String::new();
                        $(inputs.push_str(&format!(
                            "\n  {} = {:?}",
                            stringify!($arg),
                            $arg
                        ));)+
                        panic!(
                            "proptest '{}' failed after {} passing case(s): {}\ninputs (not shrunk):{}",
                            stringify!($name),
                            accepted,
                            message,
                            inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}
