//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value *tree*: strategies sample
/// directly and failures are reported unshrunk.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase (cheaply clonable, usable in [`Union`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Arc::new(self)
    }
}

/// A type-erased, clonable strategy.
pub type BoxedStrategy<T> = Arc<dyn Strategy<Value = T>>;

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice between strategies of one value type
/// (built by [`prop_oneof!`](crate::prop_oneof)).
#[derive(Clone)]
pub struct Union<T: Clone + Debug> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: Clone + Debug> Union<T> {
    /// Build from `(weight, strategy)` pairs. Total weight must be > 0.
    pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            choices.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof requires a positive total weight"
        );
        Union { choices }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.choices.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (weight, strategy) in &self.choices {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_map_tuples_and_unions_sample_sanely() {
        let mut rng = TestRng::deterministic("strategy::tests");
        let range = 5u64..10;
        let mapped = (1u8..=3, Just(100u64)).prop_map(|(a, b)| u64::from(a) + b);
        let union = crate::prop_oneof![2 => Just(1u32), 1 => Just(2u32)];
        let mut saw = [0u32; 3];
        for _ in 0..300 {
            let x = range.sample(&mut rng);
            assert!((5..10).contains(&x));
            let y = mapped.sample(&mut rng);
            assert!((101..=103).contains(&y));
            saw[union.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(saw[0], 0);
        assert!(saw[1] > saw[2], "weight 2 arm should dominate: {saw:?}");
        assert!(saw[2] > 0, "weight 1 arm must still fire: {saw:?}");
    }
}
