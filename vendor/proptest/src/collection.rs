//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// `Vec`s of `element`-generated values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::deterministic("collection::tests");
        let open = vec(Just(1u8), 1..5);
        let closed = vec(Just(1u8), 4..=4);
        for _ in 0..200 {
            let n = open.sample(&mut rng).len();
            assert!((1..=4).contains(&n), "open-range length {n}");
            assert_eq!(closed.sample(&mut rng).len(), 4);
        }
    }
}
