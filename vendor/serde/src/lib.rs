//! Offline stand-in for the slice of `serde` this workspace touches.
//!
//! The build environment has no crates.io access, so this crate provides
//! only what the code uses today: the `Serialize` / `Deserialize` *derive
//! macros* and the marker traits they implement. No data format ships in
//! the workspace yet; types deriving these traits are serialization-ready
//! markers, and report rendering goes through the hand-written
//! text/CSV emitters in `metrics`. If a future PR needs real
//! serialization, replace this stub with the actual crates (or extend the
//! traits with the required methods).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait implemented by `#[derive(Serialize)]`.
pub trait Serialize {}

/// Marker trait implemented by `#[derive(Deserialize)]`.
pub trait Deserialize<'de>: Sized {}
