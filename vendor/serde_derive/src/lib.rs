//! Derive macros for the vendored `serde` stub: emit marker-trait impls.
//!
//! Implemented with a hand-rolled token scan (no `syn`/`quote` — the build
//! environment is offline). Plain `struct`/`enum` items get a marker impl;
//! generic items fall back to emitting nothing, which is still sound
//! because the marker traits carry no methods and nothing in the
//! workspace bounds on them yet.

use proc_macro::{TokenStream, TokenTree};

/// Name of the derived type, or `None` when the item is generic (or the
/// scan fails), in which case the caller emits no impl.
fn type_name(input: TokenStream) -> Option<String> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    if let Some(TokenTree::Punct(p)) = iter.peek() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name.to_string());
                }
                return None;
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("generated impl must parse"),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("generated impl must parse"),
        None => TokenStream::new(),
    }
}
