//! Offline stand-in for the slice of `criterion` this workspace's benches
//! use.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the API surface of the three bench targets: `Criterion`,
//! `BenchmarkGroup` (with `measurement_time` / `warm_up_time` /
//! `sample_size` / `bench_function` / `finish`), `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. It really measures:
//! per-sample wall-clock timing with iteration-count calibration, then a
//! median/min/max summary per benchmark — no statistics engine, plots, or
//! baselines. Swap in the real crate when the registry is reachable.

pub mod measurement {
    /// Wall-clock measurement marker (the only measurement supported).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

pub use std::hint::black_box;

use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Entry point, handed to each `criterion_group!` target function.
#[derive(Debug)]
pub struct Criterion {
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement_time: Duration::from_millis(500),
            default_warm_up_time: Duration::from_millis(100),
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            sample_size: self.default_sample_size,
            _parent: PhantomData,
            _measurement: PhantomData,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    _parent: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Total measuring time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up running time per benchmark before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Number of timing samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark and print its summary line.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = if self.name.is_empty() { id } else { format!("{}/{}", self.name, id) };
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Calibrate: grow the per-sample iteration count until one sample
        // costs roughly measurement_time / sample_size.
        let per_sample =
            self.measurement_time.max(Duration::from_millis(10)) / self.sample_size as u32;
        let warm_up_deadline = Instant::now() + self.warm_up_time;
        loop {
            f(&mut b);
            if b.elapsed >= per_sample || b.iters >= u64::MAX / 2 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                8
            } else {
                (per_sample.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 8) as u64
            };
            b.iters = b.iters.saturating_mul(grow);
        }
        // Remaining warm-up at the calibrated size.
        while Instant::now() < warm_up_deadline {
            f(&mut b);
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        let max = samples_ns[samples_ns.len() - 1];
        println!(
            "{label:<40} time: [{} {} {}]  ({} iters/sample, {} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max),
            b.iters,
            samples_ns.len()
        );
        self
    }

    /// End the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Timing context passed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it as many times as the harness asks for this
    /// sample. The return value is black-boxed so the computation is not
    /// optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundle benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.measurement_time(Duration::from_millis(20));
        group.warm_up_time(Duration::from_millis(5));
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0, "benchmark closure never executed");
    }
}
