//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
///
/// Statistically strong for simulation/testing purposes, tiny, and fully
/// deterministic per seed. Note this is *not* the stream of the real
/// `rand::rngs::StdRng` (ChaCha12); only determinism and uniformity are
/// promised, not cross-crate stream compatibility.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256++ from the canonical all-distinct small state.
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        // First output: rotl(s0 + s3, 23) + s0 = rotl(5, 23) + 1.
        assert_eq!(rng.next_u64(), (5u64 << 23) + 1);
    }

    #[test]
    fn zero_seed_state_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.s, [0; 4], "SplitMix64 must not map seed 0 to the all-zero state");
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }
}
