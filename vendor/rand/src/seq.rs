//! Sequence-related helpers (`shuffle`, `choose`).

use crate::{Rng, RngCore};

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..1000).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..1000).collect::<Vec<_>>(), "1000 elements staying sorted is ~impossible");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member_or_none() {
        let mut rng = StdRng::seed_from_u64(12);
        let v = [5u8, 6, 7];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
