//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, dependency-free reimplementation instead of the real
//! crate: [`rngs::StdRng`] (xoshiro256++ seeded by SplitMix64),
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods the code
//! calls (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`]. Sampling is unbiased (Lemire reduction)
//! and fully deterministic per seed, which is all the workloads and tests
//! require. It is **not** a drop-in for every `rand` API, and its streams
//! differ from the real `StdRng` (which is a ChaCha12 stream); seeds baked
//! into test expectations are therefore local to this workspace.

pub mod rngs;
pub mod seq;

/// Low-level uniform random source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (top half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Marker type: the "natural" uniform distribution of a type (all bit
/// patterns equally likely for integers).
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

/// Types samplable from a distribution `D`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        <Standard as Distribution<u128>>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unbiased uniform draw from `[0, span)` (`span > 0`) via Lemire's
/// multiply-and-reject reduction.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            if low < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// User-facing extension methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (all bit patterns equally likely
    /// for integers).
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform draw from a (half-open or inclusive) range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        let f: f64 = Standard.sample(self);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u8..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw missed a bucket: {seen:?}");
    }

    #[test]
    fn full_inclusive_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "p=0.25 gave {hits}/100000");
    }

    #[test]
    fn u128_gen_uses_both_halves() {
        let mut rng = StdRng::seed_from_u64(5);
        let x: u128 = rng.gen();
        assert_ne!(x >> 64, 0);
        assert_ne!(x & u128::from(u64::MAX), 0);
    }
}
